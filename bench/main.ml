(* The SoftBorg experiment harness.

   One experiment per figure/claim of the paper (see DESIGN.md §4 and
   EXPERIMENTS.md for the index), plus Bechamel micro-benchmarks of the
   hot paths.  `dune exec bench/main.exe` runs everything; pass
   experiment ids (e1 e3 micro ...) to run a subset. *)

module Rng = Softborg_util.Rng
module Stats = Softborg_util.Stats
module Tabular = Softborg_util.Tabular
module Bitvec = Softborg_util.Bitvec
module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Bytecode = Softborg_exec.Bytecode
module Engine = Softborg_exec.Engine
module Build = Softborg_prog.Build
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Compress = Softborg_trace.Compress
module Sampling = Softborg_trace.Sampling
module Anonymize = Softborg_trace.Anonymize
module Exec_tree = Softborg_tree.Exec_tree
module Cnf = Softborg_solver.Cnf
module Dpll = Softborg_solver.Dpll
module Portfolio = Softborg_solver.Portfolio
module Sym_exec = Softborg_symexec.Sym_exec
module Consistency = Softborg_symexec.Consistency
module Immunity = Softborg_conc.Immunity
module Schedule_explore = Softborg_conc.Schedule_explore
module Link = Softborg_net.Link
module Fault_plan = Softborg_net.Fault_plan
module Hive = Softborg_hive.Hive
module Knowledge = Softborg_hive.Knowledge
module Checkpoint = Softborg_hive.Checkpoint
module Trace_store = Softborg_hive.Trace_store
module Ids = Softborg_util.Ids
module Fixgen = Softborg_hive.Fixgen
module Isolate = Softborg_hive.Isolate
module Prover = Softborg_hive.Prover
module Allocate = Softborg_hive.Allocate
module Guidance = Softborg_hive.Guidance
module Gap_memo = Softborg_hive.Gap_memo
module Protocol = Softborg_hive.Protocol
module Shard_map = Softborg_hive.Shard_map
module Federation = Softborg_hive.Federation
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Corpus_bench = Softborg_corpus.Corpus_bench
module Repair_score = Softborg_hive.Repair_score
module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics

let col = Tabular.column
let rcol = Tabular.column ~align:Tabular.Right
let fmt_f = Tabular.fmt_float
let heading title = Printf.printf "\n================ %s ================\n" title

let run_once ?(fault_plan = Env.No_faults) ?(seed = 7) ?(sched = Sched.Round_robin)
    ?(max_steps = 20_000) program inputs =
  let env = Env.make ~fault_plan ~seed ~inputs () in
  Interp.run ~max_steps ~program ~env ~sched ()

(* ==================================================================== *)
(* E1 — Figure 1 / §2: the platform loop makes software more reliable   *)
(* the more it is used.                                                 *)
(* ==================================================================== *)

let e1 () =
  heading "E1: reliability grows with use (Figure 1 loop, paper-§2 hypothesis)";
  let config, population = Scenario.buggy_population ~seed:11 ~n_pods:9 () in
  let config = { config with Platform.duration = 1500.0; sample_interval = 150.0 } in
  Printf.printf "population: %d generated programs, planted bugs:\n" (List.length population);
  List.iter
    (fun ((prog : Ir.t), planted) ->
      List.iter
        (fun (p : Generator.planted) ->
          Printf.printf "  %-12s %s\n" prog.Ir.name p.Generator.description)
        planted)
    population;
  let report = Platform.run config in
  let rows =
    List.map
      (fun (w : Metrics.window) ->
        [
          Printf.sprintf "%.0f-%.0f" w.Metrics.t_start w.Metrics.t_end;
          string_of_int w.Metrics.w_sessions;
          string_of_int w.Metrics.w_failures;
          string_of_int w.Metrics.w_averted;
          fmt_f ~decimals:4 w.Metrics.w_failure_rate;
        ])
      (Metrics.windows report.Platform.snapshots)
  in
  Tabular.print ~title:"user-visible failure rate per window (expect decay toward 0)"
    [ col "window"; rcol "sessions"; rcol "failures"; rcol "averted"; rcol "fail-rate" ]
    rows;
  let f = report.Platform.final in
  Printf.printf
    "final: %d sessions, %d failures, %d averted, %d fixes deployed, %d valid proofs\n"
    f.Metrics.sessions f.Metrics.user_failures f.Metrics.averted_crashes
    f.Metrics.fixes_deployed f.Metrics.proofs_valid

(* ==================================================================== *)
(* E2 — Figures 2 & 3: programs as execution trees; dynamic             *)
(* construction by LCA-paste merging of natural executions.             *)
(* ==================================================================== *)

let e2 () =
  heading "E2: collective execution trees (Figures 2 & 3)";
  let rng = Rng.create 7 in
  let looped, _ =
    Generator.generate (Rng.create 5)
      { Generator.default_params with Generator.block_depth = 3; stmts_per_block = 5; bugs = [] }
  in
  let subjects =
    [ ("fig2-write", Corpus.fig2_write); ("parser", Corpus.parser); ("generated", looped) ]
  in
  let n = 1500 in
  let rows =
    List.map
      (fun (name, (program : Ir.t)) ->
        let tree = Exec_tree.create () in
        let shared = Stats.Online.create () in
        let created = Stats.Online.create () in
        let recorded = Stats.Online.create () in
        let rle = Stats.Online.create () in
        for _ = 1 to n do
          let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng (-64) 255) in
          let r = run_once ~seed:(Rng.int rng 10_000) program inputs in
          let stats = Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome in
          Stats.Online.add shared (float_of_int stats.Exec_tree.shared_depth);
          Stats.Online.add created (float_of_int stats.Exec_tree.new_nodes);
          let decisions = List.length r.Interp.full_path in
          if decisions > 0 then
            Stats.Online.add recorded
              (float_of_int (Bitvec.length r.Interp.bits) /. float_of_int decisions);
          Stats.Online.add rle (Compress.compression_ratio r.Interp.bits)
        done;
        [
          name;
          string_of_int n;
          string_of_int (Exec_tree.n_distinct_paths tree);
          string_of_int (Exec_tree.n_nodes tree);
          string_of_int (Exec_tree.depth tree);
          fmt_f (Stats.Online.mean shared);
          fmt_f (Stats.Online.mean created);
          Tabular.fmt_pct (Stats.Online.mean recorded);
          fmt_f (Stats.Online.mean rle);
        ])
      subjects
  in
  Tabular.print
    ~title:
      "merging natural executions (LCA depth = shared prefix; recorded = input-dependent \
       branch fraction; RLE ratio <1 means plain packing wins and the wire format uses it)"
    [
      col "program"; rcol "execs"; rcol "paths"; rcol "nodes"; rcol "depth"; rcol "LCA depth";
      rcol "new nodes"; rcol "recorded"; rcol "RLE ratio";
    ]
    rows;
  let tree = Exec_tree.create () in
  List.iter
    (fun p ->
      let r = run_once Corpus.fig2_write [| p |] in
      ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome))
    [ -20; 0; 5; 50; 99; 100; 150; 1000 ];
  Printf.printf
    "fig2-write sweep: %d distinct root-to-leaf paths (Figure 2 has 4 syntactic leaves, of \
     which 1 is infeasible)\n"
    (Exec_tree.n_distinct_paths tree);
  (* Ablation (DESIGN §5): record every branch vs input-dependent
     branches only (paper §3.1's cost reduction).  Wire sizes compare
     the actual trace against one whose bit-vector covers all
     decisions. *)
  let rng = Rng.create 15 in
  let rows =
    List.map
      (fun (name, (program : Ir.t)) ->
        let dep_bytes = Stats.Online.create () in
        let all_bytes = Stats.Online.create () in
        for i = 1 to 300 do
          let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng (-64) 255) in
          let r = run_once ~seed:i program inputs in
          let trace = Trace.of_result ~program_digest:(Ir.digest program) ~pod:1 ~fix_epoch:0 r in
          Stats.Online.add dep_bytes (float_of_int (String.length (Wire.encode trace)));
          (* Record-all variant: one bit per decision, deterministic or
             not. *)
          let full_bits = Bitvec.create () in
          List.iter (fun (_, taken) -> Bitvec.push full_bits taken) r.Interp.full_path;
          let all = { trace with Trace.bits = full_bits } in
          Stats.Online.add all_bytes (float_of_int (String.length (Wire.encode all)))
        done;
        [
          name;
          fmt_f ~decimals:1 (Stats.Online.mean all_bytes);
          fmt_f ~decimals:1 (Stats.Online.mean dep_bytes);
          Tabular.fmt_pct
            (1.0 -. (Stats.Online.mean dep_bytes /. Stats.Online.mean all_bytes));
        ])
      [
        ("parser", Corpus.parser);
        ("checksum", Corpus.checksum);
        ("generated", looped);
      ]
  in
  Tabular.print
    ~title:
      "ablation: record-all vs input-dependent-only branch recording (wire bytes/trace; \
       checksum's control flow is mostly deterministic, the paper's common case)"
    [ col "program"; rcol "record-all"; rcol "input-dep only"; rcol "saving" ]
    rows

(* ==================================================================== *)
(* E3 — §4 claim: a portfolio of three SAT solvers gives ~10x speedup   *)
(* in constraint-solving time for ~3x the resources.                    *)
(* ==================================================================== *)

let random_3sat rng ~n_vars ~n_clauses =
  let clause () =
    List.init 3 (fun _ ->
        let v = 1 + Rng.int rng n_vars in
        if Rng.bool rng then v else -v)
  in
  Cnf.make ~n_vars (List.init n_clauses (fun _ -> clause ()))

(* An implication-chain instance with a planted contradiction: unit
   propagation kills it instantly (DPLL), while local search can only
   burn its budget — the opposite profile from loose random SAT. *)
let chain_unsat ~n_vars =
  let clauses =
    [ [ 1 ] ] @ List.init (n_vars - 1) (fun i -> [ -(i + 1); i + 2 ]) @ [ [ -n_vars ] ]
  in
  Cnf.make ~n_vars clauses

let e3 () =
  heading "E3: SAT-solver portfolio — the 10x-at-3x claim (paper §4)";
  let budget = 3_000_000 in
  let rng = Rng.create 99 in
  let families =
    [
      (* Large under-constrained SAT: local search shines, systematic
         search wanders. *)
      ("loose-sat", List.init 8 (fun _ -> random_3sat rng ~n_vars:150 ~n_clauses:450));
      (* Near the phase transition: hard for everyone, DPLL worst. *)
      ("phase-mix", List.init 8 (fun _ -> random_3sat rng ~n_vars:60 ~n_clauses:255));
      (* Over-constrained UNSAT: DPLL refutes, WalkSAT burns budget. *)
      ("dense-unsat", List.init 8 (fun _ -> random_3sat rng ~n_vars:26 ~n_clauses:190));
      (* Structured UNSAT chain: unit propagation kills it instantly. *)
      ("chain-unsat", List.init 4 (fun i -> chain_unsat ~n_vars:(200 + (50 * i))));
    ]
  in
  (* A fresh portfolio per race so the stochastic members replay the
     same rng streams in the preemptive race and the whole-budget
     baseline — making the two runs trajectory-identical and their
     verdicts comparable instance by instance. *)
  let members () = Portfolio.standard_three ~budget ~seed:5 in
  let solver_names = List.map (fun (s : Portfolio.solver) -> s.Portfolio.name) (members ()) in
  let per_solver_steps : (string, float list) Hashtbl.t = Hashtbl.create 8 in
  let note name steps =
    Hashtbl.replace per_solver_steps name
      (steps :: Option.value ~default:[] (Hashtbl.find_opt per_solver_steps name))
  in
  let portfolio_steps = ref [] in
  let sliced_resources = ref 0 in
  let whole_resources = ref 0 in
  let resource_ratios = ref [] in
  let rows =
    List.map
      (fun (family, instances) ->
        let family_single : (string, float list) Hashtbl.t = Hashtbl.create 8 in
        let walls = ref [] in
        let family_sliced = ref 0 in
        let family_whole = ref 0 in
        List.iter
          (fun formula ->
            (* The preemptive sliced race: resource_steps is work the
               losers actually performed before cancellation. *)
            let race = Portfolio.race (members ()) formula in
            (* The pre-preemption baseline: everyone runs to its own
               verdict or budget; its runs are the single-solver costs. *)
            let whole = Portfolio.race_whole_budget (members ()) formula in
            assert (race.Portfolio.verdict = whole.Portfolio.verdict);
            walls := float_of_int race.Portfolio.wall_steps :: !walls;
            portfolio_steps := float_of_int race.Portfolio.wall_steps :: !portfolio_steps;
            family_sliced := !family_sliced + race.Portfolio.resource_steps;
            family_whole := !family_whole + whole.Portfolio.resource_steps;
            if race.Portfolio.wall_steps > 0 then
              resource_ratios :=
                (float_of_int race.Portfolio.resource_steps
                /. float_of_int race.Portfolio.wall_steps)
                :: !resource_ratios;
            List.iter
              (fun (r : Portfolio.run) ->
                note r.Portfolio.solver (float_of_int r.Portfolio.steps);
                Hashtbl.replace family_single r.Portfolio.solver
                  (float_of_int r.Portfolio.steps
                  :: Option.value ~default:[] (Hashtbl.find_opt family_single r.Portfolio.solver)))
              whole.Portfolio.runs)
          instances;
        sliced_resources := !sliced_resources + !family_sliced;
        whole_resources := !whole_resources + !family_whole;
        let mean name =
          (Stats.summarize (Option.value ~default:[ 0.0 ] (Hashtbl.find_opt family_single name)))
            .Stats.mean
        in
        family
        :: fmt_f ~decimals:0 (Stats.summarize !walls).Stats.mean
        :: Tabular.fmt_ratio (float_of_int !family_whole /. float_of_int (max 1 !family_sliced))
        :: List.map (fun name -> fmt_f ~decimals:0 (mean name)) solver_names)
      families
  in
  Tabular.print ~title:"mean solving steps per instance family (budget 3M steps)"
    (col "family" :: rcol "portfolio" :: rcol "preempt gain" :: List.map (fun n -> rcol n) solver_names)
    rows;
  let wall_mean = (Stats.summarize !portfolio_steps).Stats.mean in
  let rows =
    List.map
      (fun name ->
        let steps = Option.value ~default:[ 0.0 ] (Hashtbl.find_opt per_solver_steps name) in
        let mean = (Stats.summarize steps).Stats.mean in
        [ name; fmt_f ~decimals:0 mean; Tabular.fmt_ratio (mean /. wall_mean) ])
      solver_names
  in
  Tabular.print ~title:"portfolio speedup over each single solver (all instances)"
    [ col "single solver"; rcol "mean steps"; rcol "portfolio speedup" ]
    rows;
  let all_single =
    List.concat_map
      (fun n -> Option.value ~default:[] (Hashtbl.find_opt per_solver_steps n))
      solver_names
  in
  let preempt_gain = float_of_int !whole_resources /. float_of_int (max 1 !sliced_resources) in
  Printf.printf
    "aggregate: %.1fx speedup over the average single solver at %.2fx resources (paper \
     reports ~10x at 3x)\n"
    ((Stats.summarize all_single).Stats.mean /. wall_mean)
    (Stats.summarize !resource_ratios).Stats.mean;
  Printf.printf
    "preemption: %d executed steps vs %d whole-budget (%.1fx fewer; verdicts identical on \
     every instance)\n"
    !sliced_resources !whole_resources preempt_gain;
  (* The tentpole's acceptance bar: cancelling losers must cut executed
     work by at least 5x on this mix. *)
  assert (preempt_gain >= 5.0)

(* ==================================================================== *)
(* E4 — §3.3: execution guidance accelerates learning.                  *)
(* ==================================================================== *)

let e4 () =
  heading "E4: execution guidance vs natural executions (paper §3.3)";
  let run ~guidance =
    let config = Scenario.single_program ~seed:21 Corpus.parser in
    let hive_config =
      { config.Platform.hive_config with Hive.guidance_max = (if guidance then 8 else 0) }
    in
    let config =
      {
        config with
        Platform.duration = 600.0;
        sample_interval = 60.0;
        hive_config;
        pod_config =
          {
            config.Platform.pod_config with
            Pod.workload = Workload.Zipf_inputs { lo = 0; hi = 191; exponent = 1.3 };
            arrival_rate = 2.0;
          };
      }
    in
    Platform.run config
  in
  let natural = run ~guidance:false in
  let guided = run ~guidance:true in
  let rows =
    List.map2
      (fun (a : Metrics.snapshot) (b : Metrics.snapshot) ->
        [
          Printf.sprintf "%.0f" a.Metrics.time;
          string_of_int a.Metrics.tree_paths;
          Tabular.fmt_pct a.Metrics.tree_completeness;
          string_of_int b.Metrics.tree_paths;
          Tabular.fmt_pct b.Metrics.tree_completeness;
        ])
      natural.Platform.snapshots guided.Platform.snapshots
  in
  Tabular.print ~title:"tree growth: natural Zipf workload vs hive-guided pods"
    [
      col "time"; rcol "nat paths"; rcol "nat complete"; rcol "guided paths";
      rcol "guided complete";
    ]
    rows;
  let fixes r =
    List.length
      (List.filter Fixgen.is_deployable (List.concat_map Knowledge.fixes r.Platform.knowledge))
  in
  Printf.printf
    "natural: %d fixes, %d user failures | guided: %d fixes, %d user failures (%d guided \
     runs found the bug first)\n"
    (fixes natural) natural.Platform.final.Metrics.user_failures (fixes guided)
    guided.Platform.final.Metrics.user_failures guided.Platform.final.Metrics.guided_runs

(* ==================================================================== *)
(* E5 — §3.1: sampling rate vs capture overhead vs isolation quality.   *)
(* ==================================================================== *)

let e5 () =
  heading "E5: coordinated sampling — overhead vs bug-isolation quality (paper §3.1)";
  let program = Corpus.parser in
  let rng = Rng.create 31 in
  let trigger_run = run_once program Corpus.parser_trigger in
  let true_predicate =
    match List.rev trigger_run.Interp.full_path with
    | (site, direction) :: _ -> { Sampling.site; direction }
    | [] -> failwith "no decisions"
  in
  let n_runs = 600 in
  let inputs_for () =
    if Rng.bernoulli rng 0.05 then Array.copy Corpus.parser_trigger
    else Array.init 3 (fun _ -> Rng.int_in rng 0 191)
  in
  let runs =
    List.init n_runs (fun i ->
        let r = run_once ~seed:i program (inputs_for ()) in
        (r.Interp.full_path, r.Interp.outcome))
  in
  let rows =
    List.map
      (fun rate ->
        let isolate = Isolate.create () in
        let overheads = Stats.Online.create () in
        let widths = Stats.Online.create () in
        List.iter
          (fun (full_path, outcome) ->
            let sampled = Sampling.sample rng ~rate ~full_path ~outcome in
            Stats.Online.add overheads (Sampling.modeled_overhead sampled);
            Stats.Online.add widths (Sampling.family_width_log2 sampled);
            Isolate.record isolate sampled)
          runs;
        let rank =
          match Isolate.localization_rank isolate ~target:true_predicate with
          | Some r -> string_of_int r
          | None -> "lost"
        in
        [
          Printf.sprintf "1/%d" rate;
          Tabular.fmt_pct (Stats.Online.mean overheads);
          fmt_f (Stats.Online.mean widths);
          string_of_int (Isolate.failing_runs isolate);
          rank;
        ])
      [ 1; 10; 100; 1000 ]
  in
  Tabular.print
    ~title:
      (Printf.sprintf
         "sampling sweep over %d runs (~5%% crashing); bug rank 1 = perfectly localized"
         n_runs)
    [ col "rate"; rcol "overhead"; rcol "family log2"; rcol "fail obs"; rcol "bug rank" ]
    rows;
  (* The paper's counterweight: what sparse sampling loses, the size of
     the user community wins back — "no software organization can match
     the aggregate resources of a real user population" (§2). *)
  let rate = 100 in
  let rows =
    List.map
      (fun community ->
        let isolate = Isolate.create () in
        for i = 1 to community do
          let r = run_once ~seed:i program (inputs_for ()) in
          let sampled =
            Sampling.sample rng ~rate ~full_path:r.Interp.full_path ~outcome:r.Interp.outcome
          in
          Isolate.record isolate sampled
        done;
        let rank =
          match Isolate.localization_rank isolate ~target:true_predicate with
          | Some r -> string_of_int r
          | None -> "lost"
        in
        [
          string_of_int community;
          string_of_int (Isolate.failing_runs isolate);
          rank;
        ])
      [ 500; 2_000; 8_000; 32_000 ]
  in
  Tabular.print
    ~title:(Printf.sprintf "community size compensates sparse sampling (fixed rate 1/%d)" rate)
    [ rcol "community runs"; rcol "failing runs"; rcol "bug rank" ]
    rows

(* ==================================================================== *)
(* E6 — §3.3: deadlock immunity.                                        *)
(* ==================================================================== *)

let e6 () =
  heading "E6: deadlock immunity (paper §3.3, after Jula et al. [16])";
  let make_env () = Env.make ~seed:3 ~inputs:[| 2 |] () in
  let explore hooks =
    Schedule_explore.explore ~max_runs:200 ?hooks ~program:Corpus.worker_pool ~make_env ()
  in
  let count result =
    List.fold_left
      (fun acc (o, _) -> match o with Outcome.Deadlock _ -> acc + 1 | _ -> acc)
      0 result.Schedule_explore.outcomes
  in
  let before = explore None in
  let immunizer = Immunity.create ~patterns:[ [ 0; 1 ] ] in
  let after = explore (Some (Immunity.hooks immunizer)) in
  let deferred = ref 0 and runs = 500 in
  for seed = 0 to runs - 1 do
    let r =
      Interp.run ~hooks:(Immunity.hooks immunizer) ~program:Corpus.worker_pool
        ~env:(make_env ())
        ~sched:(Sched.Random_sched (Rng.create seed))
        ()
    in
    deferred := !deferred + r.Interp.deferred_acquisitions
  done;
  Tabular.print ~title:"systematic schedule exploration of worker-pool"
    [ col "configuration"; rcol "schedules"; rcol "deadlocks" ]
    [
      [
        "unprotected";
        string_of_int before.Schedule_explore.distinct_schedules;
        string_of_int (count before);
      ];
      [
        "with immunity";
        string_of_int after.Schedule_explore.distinct_schedules;
        string_of_int (count after);
      ];
    ];
  Printf.printf "avoidance overhead: %.3f deferred acquisitions per run (%d runs)\n"
    (float_of_int !deferred /. float_of_int runs)
    runs

(* ==================================================================== *)
(* E7 — §5: SoftBorg vs WER vs CBI on the same fleet.                   *)
(* ==================================================================== *)

let e7 () =
  heading "E7: SoftBorg vs WER-style vs CBI-style feedback loops (paper §5)";
  let runs =
    List.map
      (fun (name, config) ->
        let config = { config with Platform.duration = 1500.0; sample_interval = 300.0 } in
        (name, Platform.run config))
      (Scenario.three_way_comparison ~seed:17 ())
  in
  let windows = List.map (fun (name, r) -> (name, Metrics.windows r.Platform.snapshots)) runs in
  let n_windows = List.fold_left (fun acc (_, ws) -> min acc (List.length ws)) max_int windows in
  let rows =
    List.init n_windows (fun i ->
        let w0 = List.nth (snd (List.hd windows)) i in
        Printf.sprintf "%.0f-%.0f" w0.Metrics.t_start w0.Metrics.t_end
        :: List.map
             (fun (_, ws) -> fmt_f ~decimals:4 (List.nth ws i).Metrics.w_failure_rate)
             windows)
  in
  Tabular.print ~title:"user-visible failure rate per window"
    (col "window" :: List.map (fun (n, _) -> rcol n) windows)
    rows;
  let rows =
    List.map
      (fun (name, r) ->
        let f = r.Platform.final in
        [
          name;
          string_of_int f.Metrics.sessions;
          string_of_int f.Metrics.user_failures;
          fmt_f ~decimals:5 (Metrics.failure_rate f);
          string_of_int f.Metrics.averted_crashes;
          string_of_int f.Metrics.fixes_deployed;
          string_of_int f.Metrics.proofs_valid;
        ])
      runs
  in
  Tabular.print ~title:"final totals"
    [
      col "platform"; rcol "sessions"; rcol "failures"; rcol "fail-rate"; rcol "averted";
      rcol "fixes"; rcol "proofs";
    ]
    rows

(* ==================================================================== *)
(* E8 — §4: relaxed execution consistency (after S2E).                  *)
(* ==================================================================== *)

let e8 () =
  heading "E8: execution-consistency relaxation (paper §4, after S2E)";
  let deadlocked, _ =
    Generator.generate (Rng.create 3)
      { Generator.default_params with Generator.bugs = [ Generator.Deadlock_pair ] }
  in
  let subjects =
    [
      ("worker-pool", Corpus.worker_pool);
      ("racy-counter", Corpus.racy_counter);
      ("generated", deadlocked);
    ]
  in
  let config = { Sym_exec.default_config with Sym_exec.max_paths = 256 } in
  let rows =
    List.concat_map
      (fun (name, program) ->
        let describe level_name (report : Sym_exec.report) =
          let by_verdict v =
            List.length
              (List.filter
                 (fun (p : Sym_exec.path) -> p.Sym_exec.solver_verdict = v)
                 report.Sym_exec.paths)
          in
          let paths = List.length report.Sym_exec.paths in
          [
            name;
            level_name;
            string_of_int paths;
            string_of_int report.Sym_exec.total_steps;
            fmt_f
              (1000.0 *. float_of_int paths /. float_of_int (max 1 report.Sym_exec.total_steps));
            string_of_int (by_verdict `Sat);
            string_of_int (by_verdict `Unsat);
          ]
        in
        let strict = Sym_exec.explore ~config program Consistency.Strict in
        let local = Sym_exec.explore ~config program (Consistency.Local { thread = 1 }) in
        [ describe "strict" strict; describe "local(t1)" local ])
      subjects
  in
  Tabular.print
    ~title:
      "strict (system-level) vs local (unit-level, havoced globals); UNSAT paths under \
       local = over-approximation artifacts"
    [
      col "program"; col "consistency"; rcol "paths"; rcol "steps"; rcol "paths/kstep";
      rcol "feasible"; rcol "overapprox";
    ]
    rows

(* ==================================================================== *)
(* E9 — §3.1: privacy (anonymization) vs diagnostic utility.            *)
(* ==================================================================== *)

let e9 () =
  heading "E9: trace anonymization vs hive diagnosis quality (paper §3.1)";
  let rng = Rng.create 13 in
  let n = 400 in
  (* Two subjects: file-copy discloses syscall values (its bug needs a
     fault, so its auto-fix is a suppression regardless of level);
     parser's bug is input-triggered, so the guard fix is derivable as
     long as control flow survives the scrubbing. *)
  let subjects =
    [
      ( "file-copy",
        Corpus.file_copy,
        fun i ->
          let inputs = Array.init 2 (fun _ -> Rng.int_in rng 0 40) in
          run_once ~fault_plan:(Env.Random_faults 0.15) ~seed:i Corpus.file_copy inputs );
      ( "parser",
        Corpus.parser,
        fun i ->
          let inputs =
            if i mod 20 = 0 then Array.copy Corpus.parser_trigger
            else Array.init 3 (fun _ -> Rng.int_in rng 0 191)
          in
          run_once ~seed:i Corpus.parser inputs );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, program, make_run) ->
        let traces =
          List.init n (fun i ->
              Trace.of_result ~program_digest:(Ir.digest program) ~pod:1 ~fix_epoch:0
                (make_run i))
        in
        List.map
          (fun level ->
            let k = Knowledge.create program in
            let residual = Stats.Online.create () in
            List.iter
              (fun trace ->
                let scrubbed = Anonymize.apply level trace in
                Stats.Online.add residual (Anonymize.residual_bits scrubbed);
                ignore (Knowledge.ingest_trace k scrubbed))
              traces;
            let fixes = Knowledge.analyze k in
            let fix_quality =
              if
                List.exists
                  (fun f -> match f.Fixgen.kind with Fixgen.Input_guard _ -> true | _ -> false)
                  fixes
              then "guard"
              else if
                List.exists
                  (fun f ->
                    match f.Fixgen.kind with Fixgen.Crash_suppression _ -> true | _ -> false)
                  fixes
              then "suppress"
              else "none"
            in
            [
              name;
              Anonymize.level_name level;
              fmt_f ~decimals:0 (Stats.Online.mean residual);
              string_of_int (Exec_tree.n_distinct_paths (Knowledge.tree k));
              string_of_int (Knowledge.replay_errors k);
              string_of_int (List.length (Knowledge.crash_evidence k));
              fix_quality;
            ])
          Anonymize.all_levels)
      subjects
  in
  Tabular.print
    ~title:
      (Printf.sprintf "%d traces per program ingested at each anonymization level" n)
    [
      col "program"; col "level"; rcol "bits/trace"; rcol "tree paths"; rcol "replay errs";
      rcol "buckets"; col "fix derivable";
    ]
    rows

(* ==================================================================== *)
(* E10 — §4: portfolio-theoretic allocation of hive nodes.              *)
(* ==================================================================== *)

let e10 () =
  heading "E10: hive-node allocation over subtrees (Markowitz, paper §4)";
  (* Subtree exploration has diminishing, depleting returns: a subtree
     holds a finite pool of undiscovered paths, each node assigned to
     it finds a yet-unseen path with some probability, and discoveries
     shrink the pool.  Some subtrees are also bursty: their paths sit
     behind rare branch conditions, so per-node success is noisy.
     Going all-in on the current best estimate both saturates that
     subtree and risks the estimate being wrong — the reason the paper
     reaches for portfolio diversification. *)
  let capacity = [| 300.0; 280.0; 220.0; 200.0; 150.0; 120.0; 60.0; 40.0 |] in
  let hit_prob = [| 0.30; 0.28; 0.22; 0.20; 0.15; 0.35; 0.25; 0.20 |] in
  (* Probability that a subtree's burst state flips each round.  Burst
     phases persist: a subtree whose paths hide behind a rare branch
     condition can stay dark for many rounds, then open up. *)
  let flip_prob = 0.12 in
  let n_tasks = Array.length capacity in
  let nodes = 16 in
  let rounds = 80 in
  let repetitions = 15 in
  let policies =
    [ Allocate.Uniform; Allocate.Greedy; Allocate.Mean_variance { risk_aversion = 0.5 } ]
  in
  let simulate_policy policy seed =
    let rng = Rng.create seed in
    let tasks = List.init n_tasks Allocate.task in
    let remaining = Array.copy capacity in
    let blocked = Array.init n_tasks (fun i -> i mod 2 = 0) in
    let total = ref 0.0 in
    for _ = 1 to rounds do
      Array.iteri
        (fun i b -> if Rng.bernoulli rng flip_prob then blocked.(i) <- not b)
        blocked;
      let allocation = Allocate.allocate policy ~nodes tasks in
      List.iter
        (fun (task_id, n) ->
          let task = List.nth tasks task_id in
          for _ = 1 to n do
            let depletion = remaining.(task_id) /. capacity.(task_id) in
            let p = if blocked.(task_id) then 0.0 else hit_prob.(task_id) *. depletion in
            let found = if Rng.bernoulli rng p then 1.0 else 0.0 in
            remaining.(task_id) <- Float.max 0.0 (remaining.(task_id) -. found);
            total := !total +. found;
            Allocate.observe_reward task found
          done)
        allocation
    done;
    !total
  in
  let rows =
    List.map
      (fun policy ->
        let totals = List.init repetitions (fun rep -> simulate_policy policy (100 + rep)) in
        let s = Stats.summarize totals in
        [
          Allocate.policy_name policy;
          fmt_f ~decimals:0 s.Stats.mean;
          fmt_f ~decimals:0 s.Stats.min;
          fmt_f ~decimals:0 s.Stats.stddev;
        ])
      policies
  in
  Tabular.print
    ~title:
      (Printf.sprintf
         "%d hive nodes, %d depleting subtrees with persistent dark phases, %d rounds x %d \
          repetitions (reward = newly discovered paths; min/stddev = risk)"
         nodes n_tasks rounds repetitions)
    [ col "policy"; rcol "mean found"; rcol "worst run"; rcol "stddev" ]
    rows;
  (* The real thing: a coordinator dynamically partitions an actual
     execution tree's frontier across worker nodes over the simulated
     network, and closure time scales with the worker pool. *)
  let module Coop = Softborg_hive.Coop_symexec in
  let module Sim = Softborg_net.Sim in
  let module Transport = Softborg_net.Transport in
  let program, _ =
    Generator.generate (Rng.create 5)
      { Generator.default_params with Generator.block_depth = 3; stmts_per_block = 5; bugs = [] }
  in
  let rows =
    List.map
      (fun n_workers ->
        let sim = Sim.create () in
        let rng = Rng.create 19 in
        (* Seed the tree with a couple of natural executions; the rest
           of the frontier is the pool's job. *)
        let tree = Exec_tree.create () in
        for i = 1 to 2 do
          let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng 0 40) in
          let r = run_once ~seed:i program inputs in
          ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome)
        done;
        let initial_gaps = Exec_tree.frontier_size tree in
        let workers =
          List.init n_workers (fun _ ->
              let coord_end, worker_end =
                Transport.endpoint_pair ~sim ~rng:(Rng.create (Rng.int rng 10_000)) ()
              in
              ignore (Coop.Worker.create ~program ~endpoint:worker_end ());
              coord_end)
        in
        let coordinator = Coop.Coordinator.create ~sim ~program ~tree ~workers () in
        Coop.Coordinator.start coordinator;
        (* Run until every branch direction is decided (covered or
           proven infeasible) or a generous horizon passes. *)
        let horizon = 2000.0 in
        let rec drive () =
          if Sim.now sim >= horizon || Coop.Coordinator.done_ coordinator then Sim.now sim
          else begin
            Sim.run ~until:(Sim.now sim +. 5.0) sim;
            drive ()
          end
        in
        let elapsed = Float.max 1.0 (drive ()) in
        let p = Coop.Coordinator.progress coordinator in
        (n_workers, initial_gaps, p.Coop.Coordinator.gaps_resolved, elapsed))
      [ 1; 2; 4; 8 ]
  in
  let base_time = match rows with (_, _, _, t) :: _ -> t | [] -> 1.0 in
  Tabular.print
    ~title:
      "cooperative symbolic execution: deciding every branch direction of a generated \
       loop-heavy program with a worker pool over the network"
    [ rcol "workers"; rcol "initial gaps"; rcol "directions decided"; rcol "time (s)"; rcol "speedup" ]
    (List.map
       (fun (n_workers, initial_gaps, resolved, elapsed) ->
         [
           string_of_int n_workers;
           string_of_int initial_gaps;
           string_of_int resolved;
           fmt_f ~decimals:0 elapsed;
           Tabular.fmt_ratio (base_time /. elapsed);
         ])
       rows)

(* ==================================================================== *)
(* E11 — §3.3: cumulative proofs from natural executions + symbolic     *)
(* closure; invalidation on fix deployment.                             *)
(* ==================================================================== *)

let e11 () =
  heading "E11: cumulative proofs (paper §3.3)";
  let rng = Rng.create 23 in
  let proof_row name (program : Ir.t) ~executions =
    let k = Knowledge.create program in
    for i = 1 to executions do
      let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng (-64) 255) in
      let r = run_once ~seed:i program inputs in
      let trace = Trace.of_result ~program_digest:(Knowledge.digest k) ~pod:1 ~fix_epoch:0 r in
      ignore (Knowledge.ingest_trace k trace)
    done;
    let before = Exec_tree.completeness (Knowledge.tree k) in
    let closed = Prover.close_gaps program (Knowledge.tree k) in
    let after = Exec_tree.completeness (Knowledge.tree k) in
    let crash_observations =
      List.fold_left
        (fun acc (e : Fixgen.crash_evidence) -> acc + e.Fixgen.count)
        0 (Knowledge.crash_evidence k)
    in
    let proof =
      Prover.attempt_assert_safety ~program ~tree:(Knowledge.tree k) ~crash_observations
        ~epoch:(Knowledge.epoch k) ()
    in
    let strength =
      match proof with
      | Some p -> Prover.strength_name p.Prover.strength
      | None -> "none (bug observed)"
    in
    [
      name;
      string_of_int executions;
      string_of_int (Exec_tree.n_distinct_paths (Knowledge.tree k));
      Tabular.fmt_pct before;
      string_of_int closed;
      Tabular.fmt_pct after;
      strength;
    ]
  in
  Tabular.print ~title:"assert-safety: execution evidence + symbolic closure of the tree"
    [
      col "program"; rcol "execs"; rcol "paths"; rcol "complete"; rcol "closed"; rcol "after";
      col "proof";
    ]
    [
      proof_row "fig2-write" Corpus.fig2_write ~executions:400;
      proof_row "parser" Corpus.parser ~executions:400;
      proof_row "file-copy" Corpus.file_copy ~executions:400;
    ];
  let k = Knowledge.create Corpus.fig2_write in
  for i = 1 to 50 do
    let r = run_once ~seed:i Corpus.fig2_write [| Rng.int_in rng (-64) 255 |] in
    ignore
      (Knowledge.ingest_trace k
         (Trace.of_result ~program_digest:(Knowledge.digest k) ~pod:1 ~fix_epoch:0 r))
  done;
  (match
     Prover.attempt_assert_safety ~program:Corpus.fig2_write ~tree:(Knowledge.tree k)
       ~crash_observations:0 ~epoch:(Knowledge.epoch k) ()
   with
  | Some proof -> Knowledge.record_proof k proof
  | None -> ());
  let valid_before = List.length (Knowledge.valid_proofs k) in
  ignore
    (Knowledge.add_fix k
       (Fixgen.Crash_suppression
          {
            bucket = "synthetic";
            site = { Ir.thread = 0; pc = 0 };
            crash_kind = Outcome.Assertion_failure;
          }));
  let valid_after = List.length (Knowledge.valid_proofs k) in
  Printf.printf
    "proof invalidation on fix deployment: %d valid proof(s) before the epoch bump, %d after\n"
    valid_before valid_after

(* ==================================================================== *)
(* Micro-benchmarks (Bechamel): the platform's hot paths.               *)
(* ==================================================================== *)

let micro () =
  heading "micro: hot-path benchmarks (Bechamel, ns/run via OLS)";
  let open Bechamel in
  let open Toolkit in
  let parser_run = run_once Corpus.parser [| 7; 13; 4 |] in
  let parser_trace =
    Trace.of_result ~program_digest:(Ir.digest Corpus.parser) ~pod:1 ~fix_epoch:0 parser_run
  in
  let encoded = Wire.encode parser_trace in
  let path = parser_run.Interp.full_path in
  let sat_instance = random_3sat (Rng.create 9) ~n_vars:20 ~n_clauses:80 in
  let tests =
    [
      Test.make ~name:"interp-run-fig2"
        (Staged.stage (fun () ->
             ignore
               (Interp.run ~program:Corpus.fig2_write
                  ~env:(Env.make ~seed:3 ~inputs:[| 42 |] ())
                  ~sched:Sched.Round_robin ())));
      Test.make ~name:"trace-wire-encode"
        (Staged.stage (fun () -> ignore (Wire.encode parser_trace)));
      Test.make ~name:"trace-wire-decode"
        (Staged.stage (fun () -> ignore (Wire.decode encoded)));
      Test.make ~name:"tree-add-path"
        (Staged.stage (fun () ->
             let tree = Exec_tree.create () in
             ignore (Exec_tree.add_path tree path Outcome.Success)));
      Test.make ~name:"dpll-3sat-20v"
        (Staged.stage (fun () -> ignore (Dpll.solve sat_instance)));
      Test.make ~name:"bitvec-push-256"
        (Staged.stage (fun () ->
             let v = Bitvec.create () in
             for i = 0 to 255 do
               Bitvec.push v (i land 1 = 0)
             done));
    ]
  in
  let grouped = Test.make_grouped ~name:"softborg" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      rows := [ name; fmt_f ~decimals:0 estimate; fmt_f ~decimals:2 (estimate /. 1000.0) ] :: !rows)
    results;
  Tabular.print ~title:"hot paths"
    [ col "benchmark"; rcol "ns/run"; rcol "us/run" ]
    (List.sort compare !rows)

(* ==================================================================== *)
(* micro-ingest: the fleet-scale ingestion hot paths — tree merging,    *)
(* the per-tick change-detection query (incremental vs recompute        *)
(* oracle), store admission, and the wire round-trip.  Emits machine-   *)
(* readable results to BENCH_ingest.json for the perf trajectory.       *)
(* ==================================================================== *)

(* Skewed synthetic workload: one branch site per depth with a biased
   direction, so prefixes share heavily — the popularity skew of a real
   user population. *)
let synthetic_path rng =
  let len = Rng.int_in rng 12 24 in
  List.init len (fun d -> ({ Ir.thread = 0; pc = d }, Rng.bernoulli rng 0.8))

let synthetic_tree ~paths =
  let rng = Rng.create 42 in
  let tree = Exec_tree.create () in
  for _ = 1 to paths do
    ignore (Exec_tree.add_path tree (synthetic_path rng) Outcome.Success)
  done;
  tree

let synthetic_trace rng =
  let bits = Bitvec.create () in
  let n = Rng.int_in rng 8 48 in
  for _ = 1 to n do
    Bitvec.push bits (Rng.bool rng)
  done;
  {
    Trace.trace_id = Ids.Trace_id.fresh ();
    program_digest = "bench-ingest";
    pod = Rng.int_in rng 0 1000;
    bits;
    n_decisions = n;
    schedule = [];
    syscalls = [];
    outcome = Outcome.Success;
    steps = n * 3;
    fix_epoch = 0;
    attribution = None;
  }

(* Run one Bechamel batch and return (name, ns/run) pairs. *)
let ns_per_run ~quota ~limit tests =
  let open Bechamel in
  let open Toolkit in
  let grouped = Test.make_grouped ~name:"ingest" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols_result acc ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      (name, estimate) :: acc)
    results []

let micro_ingest ?(smoke = false) () =
  heading
    (if smoke then "micro-ingest (smoke: tiny iteration counts, no JSON)"
     else "micro-ingest: single-pass ingestion & O(1) tree analytics");
  let sizes = if smoke then [ 1_000 ] else [ 10_000; 100_000 ] in
  let quota = if smoke then 0.02 else 0.75 in
  let limit = if smoke then 10 else 300 in
  let label n = if n >= 1000 then Printf.sprintf "%dk" (n / 1000) else string_of_int n in
  let all_results = ref [] in
  List.iter
    (fun n ->
      let s = label n in
      let tree = synthetic_tree ~paths:n in
      (* Sanity oracle checks at this scale — this is what makes the
         bench-smoke alias catch aggregate bit-rot, not just compile
         errors. *)
      assert (Exec_tree.frontier_size tree = List.length (Exec_tree.frontier_recompute tree));
      assert (Exec_tree.n_edges tree = Exec_tree.n_edges_recompute tree);
      assert (Exec_tree.is_complete tree = Exec_tree.is_complete_recompute tree);
      let store = Trace_store.create () in
      let preload_rng = Rng.create 77 in
      for _ = 1 to n do
        ignore (Trace_store.admit store (synthetic_trace preload_rng))
      done;
      let pool =
        let rng = Rng.create 1234 in
        Array.init 1024 (fun _ -> synthetic_trace rng)
      in
      let pool_i = ref 0 in
      let add_tree = synthetic_tree ~paths:(min n 1_000) in
      let add_rng = Rng.create 5 in
      let plan_memo = Gap_memo.create () in
      Exec_tree.iter_open_dirs tree (fun site missing ->
          Gap_memo.add plan_memo ~site ~direction:missing `Unknown);
      let open Bechamel in
      let tests =
        [
          Test.make
            ~name:(Printf.sprintf "tick-query-incr-%s" s)
            (Staged.stage (fun () ->
                 ignore (Exec_tree.frontier_size tree);
                 ignore (Exec_tree.completeness tree)));
          Test.make
            ~name:(Printf.sprintf "tick-query-oracle-%s" s)
            (Staged.stage (fun () ->
                 ignore (List.length (Exec_tree.frontier_recompute tree));
                 ignore (Exec_tree.completeness_recompute tree)));
          Test.make
            ~name:(Printf.sprintf "frontier-list-%s" s)
            (Staged.stage (fun () -> ignore (Exec_tree.frontier tree)));
          Test.make
            ~name:(Printf.sprintf "frontier-top8-%s" s)
            (Staged.stage (fun () -> ignore (Exec_tree.frontier_top tree 8)));
          Test.make
            ~name:(Printf.sprintf "plan-tick-%s" s)
            (Staged.stage (fun () ->
                 (* Memo pre-filled Unknown for every open direction, so
                    this measures the planning walk itself — lazy index
                    reads, exclusion checks, memo lookups — with the
                    symbolic solver out of the picture. *)
                 ignore (Guidance.plan ~memo:plan_memo Corpus.parser tree)));
          Test.make
            ~name:(Printf.sprintf "add-path-%s" s)
            (Staged.stage (fun () ->
                 ignore (Exec_tree.add_path add_tree (synthetic_path add_rng) Outcome.Success)));
          Test.make
            ~name:(Printf.sprintf "store-admit-%s" s)
            (Staged.stage (fun () ->
                 incr pool_i;
                 ignore (Trace_store.admit store pool.(!pool_i land 1023))));
        ]
      in
      all_results := !all_results @ ns_per_run ~quota ~limit tests)
    sizes;
  (* Wire round-trip (size-independent). *)
  let parser_run = run_once Corpus.parser [| 7; 13; 4 |] in
  let parser_trace =
    Trace.of_result ~program_digest:(Ir.digest Corpus.parser) ~pod:1 ~fix_epoch:0 parser_run
  in
  let encoded = Wire.encode parser_trace in
  let open Bechamel in
  all_results :=
    !all_results
    @ ns_per_run ~quota ~limit
        [
          Test.make ~name:"wire-encode"
            (Staged.stage (fun () -> ignore (Wire.encode parser_trace)));
          Test.make ~name:"wire-decode"
            (Staged.stage (fun () -> ignore (Wire.decode encoded)));
          Test.make ~name:"wire-roundtrip"
            (Staged.stage (fun () ->
                 ignore (Wire.decode (Wire.encode parser_trace))));
        ];
  let results = List.sort compare !all_results in
  Tabular.print ~title:"ingestion hot paths"
    [ col "benchmark"; rcol "ns/run"; rcol "us/run" ]
    (List.map
       (fun (name, ns) ->
         [ name; fmt_f ~decimals:0 ns; fmt_f ~decimals:2 (ns /. 1000.0) ])
       results);
  let find suffix =
    List.find_opt
      (fun (name, _) ->
        let ls = String.length suffix and ln = String.length name in
        ln >= ls && String.sub name (ln - ls) ls = suffix)
      results
  in
  let big = label (List.fold_left max 0 sizes) in
  let speedup =
    match (find ("tick-query-oracle-" ^ big), find ("tick-query-incr-" ^ big)) with
    | Some (_, oracle), Some (_, incr)
      when incr > 0.0 && Float.is_finite oracle && Float.is_finite incr ->
      Some (oracle, incr, oracle /. incr)
    | _ -> None
  in
  (match speedup with
  | Some (oracle, incr, sp) ->
    Printf.printf
      "tick-query speedup at %s executions: %.0fx (oracle %.0f ns vs incremental %.0f ns)\n" big
      sp oracle incr
  | None -> Printf.printf "tick-query speedup at %s: estimate unavailable\n" big);
  let frontier_speedup =
    match (find ("frontier-list-" ^ big), find ("frontier-top8-" ^ big)) with
    | Some (_, full), Some (_, top)
      when top > 0.0 && Float.is_finite full && Float.is_finite top ->
      Some (full, top, full /. top)
    | _ -> None
  in
  (match frontier_speedup with
  | Some (full, top, sp) ->
    Printf.printf
      "frontier-top8 speedup at %s executions: %.0fx (full list %.0f ns vs top-8 %.0f ns)\n" big
      sp full top
  | None -> Printf.printf "frontier-top8 speedup at %s: estimate unavailable\n" big);
  if not smoke then begin
    let oc = open_out "BENCH_ingest.json" in
    Printf.fprintf oc "{\n  \"suite\": \"micro-ingest\",\n";
    (match speedup with
    | Some (oracle, incr, sp) ->
      Printf.fprintf oc
        "  \"tick_query\": { \"at\": %S, \"oracle_ns\": %.1f, \"incremental_ns\": %.1f, \"speedup\": %.1f },\n"
        big oracle incr sp
    | None -> ());
    (match frontier_speedup with
    | Some (full, top, sp) ->
      Printf.fprintf oc
        "  \"frontier_top8\": { \"at\": %S, \"full_list_ns\": %.1f, \"top8_ns\": %.1f, \"speedup\": %.1f },\n"
        big full top sp
    | None -> ());
    Printf.fprintf oc "  \"results\": [\n";
    let last = List.length results - 1 in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %.1f }%s\n" name
          (if Float.is_finite ns then ns else 0.0)
          (if i = last then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote BENCH_ingest.json\n"
  end

(* ==================================================================== *)
(* micro-solver: wall-clock of the racing modes — whole-budget vs       *)
(* preemptive sliced vs parallel (pool 2/4) — and verdict-cache hit vs  *)
(* miss on a feasibility query.  Emits BENCH_solver.json.               *)
(* ==================================================================== *)

let micro_solver ?(smoke = false) () =
  heading
    (if smoke then "micro-solver (smoke: tiny iteration counts, no JSON)"
     else "micro-solver: preemptive racing & verdict cache");
  let quota = if smoke then 0.02 else 0.75 in
  let limit = if smoke then 4 else 100 in
  let budget = if smoke then 100_000 else 500_000 in
  let rng = Rng.create 2024 in
  (* Near the phase transition all three members run long, so the
     sequential race pays for every loser's slices serially — the
     configuration where domains buy wall-clock. *)
  let instances =
    if smoke then [ random_3sat rng ~n_vars:40 ~n_clauses:170 ]
    else List.init 3 (fun _ -> random_3sat rng ~n_vars:60 ~n_clauses:255)
  in
  let members () = Portfolio.standard_three ~budget ~seed:5 in
  let race_all ?pool () =
    List.iter (fun f -> ignore (Portfolio.race ?pool (members ()) f)) instances
  in
  let pool2 = Softborg_util.Pool.create ~size:2 in
  let pool4 = Softborg_util.Pool.create ~size:4 in
  (* Determinism oracle: every pool size must reproduce the sequential
     race result exactly — this assert is what @bench-smoke contributes
     beyond the unit tests (a different formula mix every bump of the
     seed above).  [force_parallel] pins the physical domain-racing
     path so the oracle is meaningful on single-core hosts too, where
     plain [race ~pool] degrades to the sequential engine. *)
  List.iter
    (fun f ->
      let seq = Portfolio.race (members ()) f in
      assert (Portfolio.race ~pool:pool2 ~force_parallel:true (members ()) f = seq);
      assert (Portfolio.race ~pool:pool4 ~force_parallel:true (members ()) f = seq))
    instances;
  (* Verdict-cache oracle: a hit answers identically and instantly. *)
  let module Pc_solve = Softborg_solver.Pc_solve in
  let module Verdict_cache = Softborg_solver.Verdict_cache in
  let module Path_cond = Softborg_solver.Path_cond in
  let feas_cond =
    [
      Path_cond.atom
        (Ir.Binop (Ir.Eq, Ir.Binop (Ir.Mod, Ir.Input 0, Ir.Const 64), Ir.Const 13))
        true;
      Path_cond.atom (Ir.Binop (Ir.Lt, Ir.Input 1, Ir.Input 0)) true;
    ]
  in
  let domain = (-64, 255) in
  let warm = Verdict_cache.create () in
  let miss_outcome = Pc_solve.solve ~cache:warm ~domain ~n_inputs:2 feas_cond in
  let hit_outcome = Pc_solve.solve ~cache:warm ~domain ~n_inputs:2 feas_cond in
  assert (miss_outcome.Softborg_solver.Interval.verdict = hit_outcome.Softborg_solver.Interval.verdict);
  assert (hit_outcome.Softborg_solver.Interval.steps = 0);
  let open Bechamel in
  let results =
    ns_per_run ~quota ~limit
      [
        Test.make ~name:"race-whole-budget"
          (Staged.stage (fun () ->
               List.iter (fun f -> ignore (Portfolio.race_whole_budget (members ()) f)) instances));
        Test.make ~name:"race-sliced-seq" (Staged.stage (fun () -> race_all ()));
        Test.make ~name:"race-parallel-pool2" (Staged.stage (fun () -> race_all ~pool:pool2 ()));
        Test.make ~name:"race-parallel-pool4" (Staged.stage (fun () -> race_all ~pool:pool4 ()));
        Test.make ~name:"pc-solve-cache-miss"
          (Staged.stage (fun () ->
               ignore (Pc_solve.solve ~cache:(Verdict_cache.create ()) ~domain ~n_inputs:2 feas_cond)));
        Test.make ~name:"pc-solve-cache-hit"
          (Staged.stage (fun () ->
               ignore (Pc_solve.solve ~cache:warm ~domain ~n_inputs:2 feas_cond)));
      ]
  in
  Softborg_util.Pool.shutdown pool2;
  Softborg_util.Pool.shutdown pool4;
  let results = List.sort compare results in
  Tabular.print ~title:"solver racing wall-clock"
    [ col "benchmark"; rcol "ns/run"; rcol "us/run" ]
    (List.map
       (fun (name, ns) -> [ name; fmt_f ~decimals:0 ns; fmt_f ~decimals:2 (ns /. 1000.0) ])
       results);
  let find suffix =
    List.find_opt
      (fun (name, _) ->
        let ls = String.length suffix and ln = String.length name in
        ln >= ls && String.sub name (ln - ls) ls = suffix)
      results
  in
  let ratio a b =
    match (find a, find b) with
    | Some (_, x), Some (_, y) when y > 0.0 && Float.is_finite x && Float.is_finite y ->
      Some (x, y, x /. y)
    | _ -> None
  in
  let report label = function
    | Some (x, y, r) -> Printf.printf "%s: %.1fx (%.0f ns vs %.0f ns)\n" label r x y
    | None -> Printf.printf "%s: estimate unavailable\n" label
  in
  let preempt = ratio "race-whole-budget" "race-sliced-seq" in
  let par2 = ratio "race-sliced-seq" "race-parallel-pool2" in
  let par4 = ratio "race-sliced-seq" "race-parallel-pool4" in
  let cache = ratio "pc-solve-cache-miss" "pc-solve-cache-hit" in
  let cores = Domain.recommended_domain_count () in
  report "preemption wall-clock gain (whole-budget vs sliced)" preempt;
  report "parallel wall-clock speedup (pool=2 vs sequential)" par2;
  report "parallel wall-clock speedup (pool=4 vs sequential)" par4;
  report "verdict-cache hit vs miss" cache;
  if cores <= 1 then
    Printf.printf
      "note: single-core host (%d recommended domains) — racing domains could only \
       time-share the CPU, so [race] degrades to the sequential engine and the \
       pool benchmarks measure that fallback (~1x parity).  Multicore hosts run \
       the physical race and see genuine speedup.\n"
      cores;
  if not smoke then begin
    let oc = open_out "BENCH_solver.json" in
    Printf.fprintf oc "{\n  \"suite\": \"micro-solver\",\n  \"cores\": %d,\n" cores;
    let field name = function
      | Some (x, y, r) ->
        Printf.fprintf oc
          "  \"%s\": { \"baseline_ns\": %.1f, \"new_ns\": %.1f, \"speedup\": %.2f },\n" name x
          y r
      | None -> ()
    in
    field "preemption" preempt;
    field "parallel_pool2" par2;
    field "parallel_pool4" par4;
    field "verdict_cache" cache;
    Printf.fprintf oc "  \"results\": [\n";
    let last = List.length results - 1 in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %.1f }%s\n" name
          (if Float.is_finite ns then ns else 0.0)
          (if i = last then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote BENCH_solver.json\n"
  end

(* ==================================================================== *)
(* E12 — §5 under faults: hive crashes, pod churn, degraded links.      *)
(* ==================================================================== *)

let e12 () =
  heading "E12: SoftBorg vs WER vs CBI under hive crashes, churn, and bad links";
  let configs =
    List.map
      (fun (name, config) ->
        let config = { config with Platform.duration = 1500.0; sample_interval = 300.0 } in
        (name, Scenario.with_chaos ~chaos_seed:99 config))
      (Scenario.three_way_comparison ~seed:17 ())
  in
  (match configs with
  | (_, { Platform.chaos = Some plan; _ }) :: _ ->
    Printf.printf "fault plan (%d events, identical across all three modes):\n"
      (Fault_plan.length plan);
    List.iter (fun e -> Format.printf "  %a@." Fault_plan.pp_event e) (Fault_plan.events plan)
  | _ -> ());
  let runs = List.map (fun (name, config) -> (name, Platform.run config)) configs in
  let windows = List.map (fun (name, r) -> (name, Metrics.windows r.Platform.snapshots)) runs in
  let n_windows = List.fold_left (fun acc (_, ws) -> min acc (List.length ws)) max_int windows in
  let rows =
    List.init n_windows (fun i ->
        let w0 = List.nth (snd (List.hd windows)) i in
        Printf.sprintf "%.0f-%.0f" w0.Metrics.t_start w0.Metrics.t_end
        :: List.map
             (fun (_, ws) -> fmt_f ~decimals:4 (List.nth ws i).Metrics.w_failure_rate)
             windows)
  in
  Tabular.print ~title:"user-visible failure rate per window (with faults)"
    (col "window" :: List.map (fun (n, _) -> rcol n) windows)
    rows;
  let rows =
    List.map
      (fun (name, r) ->
        let f = r.Platform.final in
        [
          name;
          string_of_int f.Metrics.sessions;
          string_of_int f.Metrics.user_failures;
          fmt_f ~decimals:5 (Metrics.failure_rate f);
          string_of_int f.Metrics.fixes_deployed;
          string_of_int f.Metrics.proofs_valid;
          string_of_int f.Metrics.checkpoints;
          string_of_int f.Metrics.restores;
        ])
      runs
  in
  Tabular.print ~title:"final totals"
    [
      col "platform"; rcol "sessions"; rcol "failures"; rcol "fail-rate"; rcol "fixes";
      rcol "proofs"; rcol "ckpts"; rcol "restores";
    ]
    rows;
  (* The headline: does the SoftBorg curve still out-decay the baselines
     when the hive keeps crashing?  Compare late-run failure rates. *)
  let late name =
    let ws = List.assoc name windows in
    let tail = List.filteri (fun i _ -> i >= List.length ws - 2) ws in
    List.fold_left (fun acc w -> acc +. w.Metrics.w_failure_rate) 0.0 tail
    /. float_of_int (max 1 (List.length tail))
  in
  let sb = late "softborg" and wer = late "wer" and cbi = late "cbi" in
  Printf.printf "late-run failure rate: softborg %.5f vs wer %.5f vs cbi %.5f — %s\n" sb wer cbi
    (if sb < wer && sb < cbi then "collective recycling wins through the faults"
     else "WARNING: chaos erased the collective advantage")

(* ==================================================================== *)
(* chaos-smoke — tiny scripted fault plan with embedded asserts, run    *)
(* from `dune build @chaos-smoke` (and from @runtest) as a bit-rot      *)
(* guard on the checkpoint/restore path.                                *)
(* ==================================================================== *)

let chaos_smoke () =
  heading "chaos-smoke: scripted faults + checkpoint round-trip asserts";
  let plan =
    Fault_plan.create
      [
        Fault_plan.Checkpoint { at = 30.0 };
        Fault_plan.Hive_crash { at = 50.0 };
        Fault_plan.Pod_leave { at = 60.0; pod = 1 };
        Fault_plan.Pod_join { at = 70.0 };
        Fault_plan.Degrade
          {
            at = 80.0;
            until_ = 110.0;
            link = { Link.drop_probability = 0.25; mean_latency = 0.3; min_latency = 0.02 };
          };
        Fault_plan.Checkpoint { at = 120.0 };
        Fault_plan.Hive_crash { at = 140.0 };
      ]
  in
  let config = Scenario.single_program ~seed:5 Corpus.parser in
  let config =
    {
      config with
      Platform.n_pods = 3;
      duration = 180.0;
      sample_interval = 45.0;
      pod_config =
        {
          config.Platform.pod_config with
          Pod.arrival_rate = 1.0;
          workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
        };
      chaos = Some plan;
      checkpoint_interval = 0.0;
    }
  in
  let report = Platform.run config in
  let f = report.Platform.final in
  assert (f.Metrics.sessions > 100);
  assert (f.Metrics.checkpoints = 3) (* initial + two scheduled *);
  assert (f.Metrics.restores = 2);
  assert (f.Metrics.traces_uploaded > 0);
  (* The surviving knowledge must round-trip byte-identically. *)
  let ks = report.Platform.knowledge in
  let s = Checkpoint.encode ks in
  (match Checkpoint.decode s with
  | Error e -> failwith ("chaos-smoke: checkpoint decode failed: " ^ e)
  | Ok ks' ->
    assert (List.length ks' = List.length ks);
    assert (Checkpoint.encode ks' = s));
  List.iter (fun k -> assert (Knowledge.traces_ingested k > 0)) ks;
  Printf.printf "chaos-smoke: %d sessions, %d checkpoints, %d restores — all asserts passed\n"
    f.Metrics.sessions f.Metrics.checkpoints f.Metrics.restores

(* ==================================================================== *)
(* E13 — overload protection: graceful degradation under spikes.        *)
(* An arrival spike 5x the nominal fleet drives the hive's ingest       *)
(* queue into shedding.  Compares the three shed policies: the          *)
(* failure-preferring one must shed only success traces, so the bug     *)
(* haul survives the overload intact.                                   *)
(* ==================================================================== *)

let e13_config () =
  let config = Scenario.single_program ~seed:13 Corpus.parser in
  {
    config with
    Platform.n_pods = 4;
    duration = 240.0;
    sample_interval = 60.0;
    pod_config =
      {
        config.Platform.pod_config with
        Pod.arrival_rate = 1.0;
        workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
      };
  }

let e13 () =
  heading "E13: overload protection — graceful degradation under spikes";
  let spiked policy =
    let overload =
      {
        Hive.default_overload_config with
        Hive.queue_bound = 24;
        service_interval = 0.25;
        shed_policy = policy;
      }
    in
    Platform.run
      (Scenario.overload_spike ~spike_pods:20 ~spike_start:60.0 ~spike_end:150.0
         (Scenario.with_overload ~overload (e13_config ())))
  in
  let rows =
    List.map
      (fun (name, policy) ->
        let r = spiked policy in
        let h = r.Platform.hive_stats in
        let f = r.Platform.final in
        [
          name;
          string_of_int h.Hive.shed_success;
          string_of_int h.Hive.shed_failure;
          string_of_int h.Hive.peak_queue_depth;
          string_of_int f.Metrics.thinned_uploads;
          string_of_int h.Hive.pressure_updates_sent;
          string_of_int
            (List.fold_left
               (fun acc k -> acc + Knowledge.failures_observed k)
               0 r.Platform.knowledge);
        ])
      [
        ("drop-newest", Hive.Drop_newest);
        ("drop-oldest", Hive.Drop_oldest);
        ("prefer-failures", Hive.Prefer_failures);
      ]
  in
  Tabular.print
    [
      col "shed policy"; rcol "shed ok"; rcol "shed fail"; rcol "peak q"; rcol "thinned";
      rcol "pressure msgs"; rcol "failures seen";
    ]
    rows;
  print_endline
    "Claim: failure-preferring shedding preserves the failure haul under overload\n\
     (shed fail = 0) while bounding the queue and thinning only success traffic."

(* ==================================================================== *)
(* overload-smoke — tiny overload run with embedded asserts, run from   *)
(* `dune build @overload-smoke` (and from @runtest) as a bit-rot guard  *)
(* on admission control, backpressure, and the pressure-0 byte-identity *)
(* invariant.                                                           *)
(* ==================================================================== *)

let overload_smoke () =
  heading "overload-smoke: admission control + byte-identity asserts";
  let config = Scenario.single_program ~seed:7 Corpus.parser in
  let config =
    {
      config with
      Platform.n_pods = 3;
      duration = 120.0;
      sample_interval = 30.0;
      pod_config =
        {
          config.Platform.pod_config with
          Pod.arrival_rate = 1.0;
          workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
        };
    }
  in
  (* Invariant 1: at pressure 0 the overload layer is byte-invisible. *)
  let baseline = Format.asprintf "%a" Platform.pp_report (Platform.run config) in
  let idle = { Hive.default_overload_config with Hive.service_interval = 0.0 } in
  let guarded =
    Format.asprintf "%a" Platform.pp_report
      (Platform.run (Scenario.with_overload ~overload:idle config))
  in
  assert (String.length baseline > 0);
  assert (String.equal baseline guarded);
  (* Invariant 2: a spike bounds the queue, sheds only successes, thins
     uploads, and pressure recovers to 0 by the end of the run. *)
  let overload =
    { Hive.default_overload_config with Hive.queue_bound = 32; service_interval = 0.2 }
  in
  let report =
    Platform.run
      (Scenario.overload_spike ~spike_pods:12 ~spike_start:30.0 ~spike_end:75.0
         (Scenario.with_overload ~overload config))
  in
  let h = report.Platform.hive_stats in
  assert (h.Hive.peak_queue_depth <= 32);
  assert (h.Hive.shed_success > 0);
  assert (h.Hive.shed_failure = 0);
  assert (h.Hive.pressure_updates_sent > 0);
  assert (report.Platform.final.Metrics.thinned_uploads > 0);
  List.iteri
    (fun i m -> if i < 3 then assert (m.Pod.pressure = 0))
    report.Platform.pod_metrics;
  Printf.printf
    "overload-smoke: shed=%d+%d peak-queue=%d thinned=%d — all asserts passed\n"
    h.Hive.shed_success h.Hive.shed_failure h.Hive.peak_queue_depth
    report.Platform.final.Metrics.thinned_uploads

(* ==================================================================== *)
(* micro-vm: bytecode VM vs tree-walk interpreter.  Cross-checks both  *)
(* engines on a generated population (every by-product byte-equal),    *)
(* measures executions/sec at population scale, the compile-cache hit  *)
(* rate, and the marginal minor-heap words per dispatched instruction  *)
(* (must be ~0: allocation in the hot loop would trigger cross-domain  *)
(* minor collections on OCaml 5).  Emits BENCH_vm.json.                *)
(* ==================================================================== *)

let micro_vm ?(smoke = false) () =
  heading
    (if smoke then "micro-vm (smoke: tiny population, no JSON)"
     else "micro-vm: bytecode VM vs tree-walk execution throughput");
  let n_programs = if smoke then 8 else 64 in
  let cocktails =
    [|
      [];
      [ Generator.Rare_assert; Generator.Div_by_zero ];
      [ Generator.Deadlock_pair ];
      [ Generator.Atomicity_race; Generator.Unchecked_syscall ];
    |]
  in
  let population =
    Array.init n_programs (fun i ->
        let params =
          {
            Generator.default_params with
            Generator.bugs = cocktails.(i mod Array.length cocktails);
            block_depth = 4;
            stmts_per_block = 8;
          }
        in
        fst (Generator.generate (Rng.create (1000 + i)) params))
  in
  (* Throughput workloads: input-bounded loops (tainted branches, so
     every iteration records a decision bit), modular arithmetic, and —
     on every other program — a second thread contending on a lock.
     Generated programs above average ~100 steps, which measures setup
     cost, not execution; these average ~1000 steps per run, which is
     where an execution engine earns its keep. *)
  let workload i =
    let open Build.Infix in
    let trip = 200 + (17 * i mod 250) in
    let main =
      [
        Build.assign (Build.lvar "i")
          ((Build.input 0 %: Build.const 64) +: Build.const trip);
        Build.assign (Build.lvar "acc") (Build.const 0);
        Build.while_
          (Build.local "i" >: Build.const 0)
          ([
             Build.assign (Build.lvar "acc")
               (Build.local "acc" +: (Build.local "i" *: Build.const (2 + (i mod 5))));
             Build.assign (Build.lvar "acc") (Build.local "acc" %: Build.const 997);
           ]
          @ (if i mod 3 = 0 then
               [
                 Build.lock 0;
                 Build.assign (Build.gvar "shared") (Build.glob "shared" +: Build.const 1);
                 Build.unlock 0;
               ]
             else [])
          @ [ Build.assign (Build.lvar "i") (Build.local "i" -: Build.const 1) ]);
        Build.halt;
      ]
    in
    let second =
      [
        Build.assign (Build.lvar "j") (Build.const (20 + (i mod 30)));
        Build.while_
          (Build.local "j" >: Build.const 0)
          [
            Build.lock 0;
            Build.assign (Build.gvar "shared") (Build.glob "shared" +: Build.const 2);
            Build.unlock 0;
            Build.assign (Build.lvar "j") (Build.local "j" -: Build.const 1);
          ];
        Build.halt;
      ]
    in
    Build.program
      ~name:(Printf.sprintf "vm-workload-%d" i)
      ~globals:[ "shared" ] ~n_inputs:1 ~n_locks:1
      (if i mod 2 = 0 then [ main; second ] else [ main ])
  in
  let workloads = Array.init n_programs workload in
  let max_steps = 8_000 in
  let env_for prog i =
    let inputs =
      Array.init prog.Ir.n_inputs (fun k -> (((i * 131) + (k * 17)) mod 601) - 100)
    in
    Env.make ~seed:i ~inputs ()
  in
  let run ~engine ~cache ~sched prog i =
    Engine.run ~max_steps ~cache ~engine ~program:prog ~env:(env_for prog i) ~sched ()
  in
  (* Engine equivalence on both populations: both engines from
     identical (inputs, seed, schedule policy) must agree on every
     by-product.  This is what @vm-smoke contributes to `dune
     runtest`. *)
  let results_equal (a : Interp.result) (b : Interp.result) =
    a.Interp.outcome = b.Interp.outcome
    && Bitvec.equal a.Interp.bits b.Interp.bits
    && a.Interp.full_path = b.Interp.full_path
    && a.Interp.schedule = b.Interp.schedule
    && a.Interp.syscalls = b.Interp.syscalls
    && a.Interp.lock_events = b.Interp.lock_events
    && a.Interp.steps = b.Interp.steps
  in
  let check_cache = Bytecode.create_cache () in
  let checked = ref 0 in
  Array.iter
    (fun prog ->
      for rep = 0 to 2 do
        let i = (3 * !checked) + rep in
        let sched () = Sched.Random_sched (Rng.create (7 * i)) in
        let tree = run ~engine:Engine.Tree ~cache:check_cache ~sched:(sched ()) prog i in
        let vm = run ~engine:Engine.Vm ~cache:check_cache ~sched:(sched ()) prog i in
        assert (results_equal tree vm)
      done;
      incr checked)
    (Array.append population workloads);
  Printf.printf "engine equivalence: %d programs x 3 runs — tree = vm on every by-product\n"
    !checked;
  (* The bug-benchmark corpus rides the same equivalence check: every
     buggy/fixed pair, one natural run plus the instance's certified
     trigger recipe (inputs, fault plan, failing schedule). *)
  let corpus_checked = ref 0 in
  List.iter
    (fun (inst : Corpus_bench.instance) ->
      let check ~program ~inputs ~fault_plan ~sched_of =
        let go engine =
          Engine.run ~cache:check_cache ~engine ~program
            ~env:(Env.make ~fault_plan ~seed:13 ~inputs ())
            ~sched:(sched_of ()) ()
        in
        assert (results_equal (go Engine.Tree) (go Engine.Vm))
      in
      List.iter
        (fun program ->
          let inputs =
            Array.init program.Ir.n_inputs (fun k -> ((37 * !corpus_checked) + (k * 11)) mod 97)
          in
          check ~program ~inputs ~fault_plan:Env.No_faults ~sched_of:(fun () ->
              Sched.Random_sched (Rng.create (31 * !corpus_checked)));
          check ~program ~inputs:inst.Corpus_bench.trigger_inputs
            ~fault_plan:inst.Corpus_bench.fault_plan
            ~sched_of:(fun () ->
              match inst.Corpus_bench.schedule_hint with
              | Some hint -> Sched.Replay hint
              | None -> Sched.Round_robin);
          incr corpus_checked)
        [ inst.Corpus_bench.buggy; inst.Corpus_bench.fixed ])
    (Corpus_bench.corpus ~seeds:[ 1 ] ());
  Printf.printf
    "engine equivalence: %d corpus-bench programs x 2 runs (incl. trigger recipes) — tree = vm\n"
    !corpus_checked;
  (* Marginal allocation per dispatched instruction: two straight-line
     programs of different lengths, identical everywhere else, so the
     fixed per-run overhead (env, machine, result materialization)
     cancels in the difference.  Straight-line assignments carry no
     decisions, so the difference isolates the dispatch loop itself,
     which must allocate nothing (an allocating loop would trigger
     cross-domain stop-the-world minor collections on OCaml 5). *)
  let straightline_program n =
    let open Build.Infix in
    Build.program ~name:(Printf.sprintf "vm-straight-%d" n)
      [
        List.init n (fun k ->
            Build.assign (Build.lvar "acc") (Build.local "acc" +: Build.const (k mod 7)))
        @ [ Build.halt ];
      ]
  in
  let words_cache = Bytecode.create_cache () in
  let minor_words_for prog reps =
    let go () =
      Engine.run ~max_steps:100_000 ~cache:words_cache ~engine:Engine.Vm ~program:prog
        ~env:(Env.make ~seed:0 ~inputs:[||] ()) ~sched:Sched.Round_robin ()
    in
    ignore (go ());
    (* warm: compile + touch every code path once *)
    let w0 = Gc.minor_words () in
    let steps = ref 0 in
    for _ = 1 to reps do
      steps := !steps + (go ()).Interp.steps
    done;
    (Gc.minor_words () -. w0, !steps)
  in
  let reps = if smoke then 2 else 5 in
  let w_small, s_small = minor_words_for (straightline_program 1_000) reps in
  let w_big, s_big = minor_words_for (straightline_program 5_000) reps in
  let words_per_instr = (w_big -. w_small) /. float_of_int (s_big - s_small) in
  Printf.printf "vm dispatch allocation: %.4f minor words/instruction (over %d instrs)\n"
    words_per_instr (s_big - s_small);
  assert (Float.abs words_per_instr < 0.05);
  (* Throughput: rotate over the workload population under a
     deterministic scheduler, fresh compile cache per measurement so
     the hit rate is honest (misses = population size). *)
  let bench_engine ~engine total =
    let cache = Bytecode.create_cache () in
    let steps = ref 0 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to total - 1 do
      steps :=
        !steps
        + (run ~engine ~cache ~sched:Sched.Round_robin workloads.(i mod n_programs) i)
            .Interp.steps
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "  [%s] avg %.0f steps/execution\n" (Engine.to_string engine)
      (float_of_int !steps /. float_of_int total);
    let stats = Bytecode.cache_stats cache in
    let served = stats.Bytecode.hits + stats.Bytecode.fast_hits + stats.Bytecode.misses in
    let hit_rate =
      if served = 0 then 0.0
      else float_of_int (stats.Bytecode.hits + stats.Bytecode.fast_hits) /. float_of_int served
    in
    (float_of_int total /. dt, hit_rate)
  in
  let sizes = if smoke then [ 1_000 ] else [ 10_000; 100_000 ] in
  let rows =
    List.map
      (fun total ->
        let tree_eps, _ = bench_engine ~engine:Engine.Tree total in
        let vm_eps, hit_rate = bench_engine ~engine:Engine.Vm total in
        let speedup = vm_eps /. tree_eps in
        Printf.printf
          "%7d executions: tree %10.0f execs/s | vm %10.0f execs/s | speedup %.2fx | cache hit-rate %.4f\n"
          total tree_eps vm_eps speedup hit_rate;
        (total, tree_eps, vm_eps, speedup, hit_rate))
      sizes
  in
  (match List.rev rows with
  | (total, _, _, speedup, _) :: _ when not smoke ->
    if speedup < 3.0 then
      Printf.printf "WARNING: vm speedup %.2fx at %d executions is below the 3x target\n" speedup
        total
  | _ -> ());
  if not smoke then begin
    let oc = open_out "BENCH_vm.json" in
    Printf.fprintf oc "{\n  \"suite\": \"micro-vm\",\n";
    Printf.fprintf oc "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
    Printf.fprintf oc "  \"population\": %d,\n" n_programs;
    Printf.fprintf oc "  \"minor_words_per_instruction\": %.4f,\n" words_per_instr;
    Printf.fprintf oc "  \"results\": [\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (total, tree_eps, vm_eps, speedup, hit_rate) ->
        Printf.fprintf oc
          "    { \"executions\": %d, \"tree_execs_per_sec\": %.0f, \"vm_execs_per_sec\": %.0f, \"speedup\": %.2f, \"cache_hit_rate\": %.4f }%s\n"
          total tree_eps vm_eps speedup hit_rate
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote BENCH_vm.json\n"
  end

(* Repair scoring over the versioned bug-benchmark corpus: per family,
   fix precision/recall against the known fixed version, executions to
   isolation, trigger aversion under the deployed hooks, and proof
   coverage of the fixed program's tree.  The embedded asserts are the
   regression yardstick: every instance must stay localized, averted,
   and at precision 1.0 — a later PR that breaks any family fails
   @repair-smoke, not a dashboard. *)
let repair_suite ?(smoke = false) () =
  heading
    (if smoke then "repair-smoke (seed 1, full scoring pipeline, no JSON)"
     else "repair: corpus-bench repair scoring (writes BENCH_repair.json)");
  let seeds = if smoke then [ 1 ] else Corpus_bench.default_seeds in
  let config =
    if smoke then { Repair_score.default_config with Repair_score.runs = 48; trigger_every = 6 }
    else Repair_score.default_config
  in
  let t0 = Unix.gettimeofday () in
  let instances = Corpus_bench.corpus ~seeds () in
  Printf.printf
    "corpus: %d instances (%d families x %d seeds), every one reproduction-checked under both engines at construction (%.2fs)\n"
    (List.length instances)
    (List.length Corpus_bench.families)
    (List.length seeds)
    (Unix.gettimeofday () -. t0);
  let scores, families = Repair_score.score_corpus ~config instances in
  Printf.printf "%-26s %5s %4s %5s %5s %6s %6s %6s  %s\n" "instance" "fails" "tti" "fixes"
    "corr" "loc" "avert" "cover" "proposals";
  List.iter
    (fun (s : Repair_score.instance_score) ->
      Printf.printf "%-26s %5d %4s %5d %5d %6b %6b %6.3f  %s\n" s.Repair_score.name
        s.Repair_score.failures_seen
        (match s.Repair_score.time_to_isolation with None -> "-" | Some i -> string_of_int i)
        s.Repair_score.proposed s.Repair_score.correct s.Repair_score.localized
        s.Repair_score.averted s.Repair_score.proof_coverage
        (String.concat "," s.Repair_score.fix_kinds))
    scores;
  Printf.printf "%-18s %2s %9s %6s %8s %8s %6s %8s\n" "family" "n" "precision" "recall"
    "isolated" "mean-tti" "avert" "coverage";
  List.iter
    (fun (f : Repair_score.family_score) ->
      Printf.printf "%-18s %2d %9.2f %6.2f %8d %8.1f %6.2f %8.3f\n" f.Repair_score.family
        f.Repair_score.instances f.Repair_score.precision f.Repair_score.recall
        f.Repair_score.isolated f.Repair_score.mean_time_to_isolation
        f.Repair_score.averted_rate f.Repair_score.mean_proof_coverage)
    families;
  (* The yardstick asserts: one planted bug per instance, so anything
     short of localized+averted at full precision is a regression. *)
  List.iter
    (fun (s : Repair_score.instance_score) ->
      assert (s.Repair_score.failures_seen > 0);
      assert (s.Repair_score.time_to_isolation <> None);
      assert (s.Repair_score.proposed > 0);
      assert (s.Repair_score.correct = s.Repair_score.proposed);
      assert s.Repair_score.localized;
      assert s.Repair_score.averted;
      assert (s.Repair_score.proof_coverage > 0.5))
    scores;
  (* Fixgen false-positive guard: the fixed variants, driven through
     the identical traffic (trigger recipes included), must yield no
     evidence and hence no fixes at all. *)
  List.iter
    (fun inst -> assert (Repair_score.fixed_variant_fixes ~config inst = []))
    instances;
  Printf.printf "fixed-variant sweep: 0 fixes proposed across %d instances\n"
    (List.length instances);
  (* Scenario wiring: a short platform run over one instance's buggy
     build must ingest traffic and deploy a fix through the normal
     pod->hive loop. *)
  let inst = List.hd instances in
  let pconfig =
    { (Scenario.repair_instance ~seed:5 inst) with Platform.duration = 90.0 }
  in
  let report = Platform.run pconfig in
  let know = List.hd report.Platform.knowledge in
  let deployable = List.filter Fixgen.is_deployable (Knowledge.fixes know) in
  Printf.printf "platform wiring (%s): %d traces ingested, %d failures, %d deployable fixes\n"
    inst.Corpus_bench.name
    (Knowledge.traces_ingested know)
    (Knowledge.failures_observed know)
    (List.length deployable);
  assert (Knowledge.traces_ingested know > 0);
  assert (deployable <> []);
  if not smoke then begin
    let oc = open_out "BENCH_repair.json" in
    Printf.fprintf oc "{\n  \"suite\": \"repair\",\n";
    Printf.fprintf oc "  \"engine\": \"%s\",\n" (Engine.to_string config.Repair_score.engine);
    Printf.fprintf oc "  \"seeds\": [%s],\n"
      (String.concat ", " (List.map string_of_int seeds));
    Printf.fprintf oc "  \"runs_per_instance\": %d,\n" config.Repair_score.runs;
    Printf.fprintf oc "  \"instances\": %d,\n" (List.length scores);
    Printf.fprintf oc "  \"families\": [\n";
    let last = List.length families - 1 in
    List.iteri
      (fun i (f : Repair_score.family_score) ->
        let threaded =
          match Corpus_bench.find_family f.Repair_score.family with
          | Some fam -> fam.Corpus_bench.threaded
          | None -> false
        in
        Printf.fprintf oc
          "    { \"family\": \"%s\", \"version\": %d, \"instances\": %d, \"concurrent\": %b, \
           \"fix_precision\": %.3f, \"fix_recall\": %.3f, \"isolated\": %d, \
           \"mean_time_to_isolation\": %.2f, \"averted_rate\": %.3f, \"proof_coverage\": %.3f }%s\n"
          f.Repair_score.family f.Repair_score.version f.Repair_score.instances threaded
          f.Repair_score.precision f.Repair_score.recall f.Repair_score.isolated
          f.Repair_score.mean_time_to_isolation f.Repair_score.averted_rate
          f.Repair_score.mean_proof_coverage
          (if i = last then "" else ","))
      families;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote BENCH_repair.json\n"
  end

(* ==================================================================== *)
(* fed — N-shard hive federation: deterministic-merge asserts, BSP     *)
(* superstep scaling, and time-to-first-fix.  The smoke variant runs   *)
(* the equality asserts only (for @fed-smoke / `dune runtest`); the    *)
(* full run also measures shard scaling and writes BENCH_fed.json.     *)
(*                                                                     *)
(* Scaling is reported in the BSP model: each shard's gap-closing job  *)
(* is timed individually, so the superstep critical path (the slowest  *)
(* shard) plus the sequential merge gives the federated tick time on   *)
(* any machine — including single-core CI hosts, where a pooled        *)
(* wall-clock measurement could only show time-sharing parity.        *)
(* ==================================================================== *)

let fed_suite ?(smoke = false) () =
  heading
    (if smoke then "fed-smoke: N-shard merge equality asserts"
     else "fed: N-shard federation scaling (writes BENCH_fed.json)");
  let fed_programs =
    (* A population with varied early branching, so path prefixes spread
       across shard ranges instead of piling onto one shard. *)
    List.init 12 (fun i ->
        fst
          (Generator.generate
             (Rng.create (9100 + i))
             {
               Generator.default_params with
               Generator.bugs = (if i mod 2 = 0 then [ Generator.Rare_assert ] else []);
               block_depth = 3;
               stmts_per_block = 6;
             }))
  in
  let upload_of program r =
    let trace =
      Trace.of_result ~program_digest:(Ir.digest program) ~pod:1 ~fix_epoch:0 r
    in
    (trace, Protocol.encode (Protocol.Trace_upload (Wire.encode trace)))
  in
  let traces_for program n =
    List.init n (fun i ->
        let inputs =
          Array.init program.Ir.n_inputs (fun k -> (((i * 53) + (k * 19)) mod 211) - 40)
        in
        let env = Env.make ~seed:i ~inputs () in
        upload_of program (Interp.run ~program ~env ~sched:Sched.Round_robin ()))
  in
  let settle sim fed =
    let rec go budget =
      if budget = 0 then failwith "fed: exchange did not quiesce";
      Federation.flush fed;
      Sim.run sim;
      if Federation.commit fed > 0 then go (budget - 1)
    in
    go 8
  in
  (* ---- Merge-equality asserts (the @fed-smoke payload) ---------------- *)
  let eq_uploads = List.concat_map (fun p -> traces_for p 12) fed_programs in
  let oracle =
    let sim = Sim.create () in
    let config = { (Hive.default_config Hive.Full) with Hive.synthesize = false } in
    let hive = Hive.create ~config ~sim () in
    List.iter (fun p -> ignore (Hive.register_program hive p)) fed_programs;
    List.iter (fun (_, payload) -> Hive.ingest_payload hive payload) eq_uploads;
    Hive.checkpoint hive
  in
  let merged_bytes n_shards =
    let sim = Sim.create () in
    let config =
      { (Federation.default_config ~n_shards ()) with Federation.synthesize = false }
    in
    let fed = Federation.create ~config ~sim ~rng:(Rng.create (40 + n_shards)) () in
    List.iter (fun p -> ignore (Federation.register_program fed p)) fed_programs;
    let pod, router = Transport.endpoint_pair ~sim ~rng:(Rng.create 7) () in
    Federation.attach_pod fed router;
    Sim.run sim;
    List.iter (fun (_, payload) -> Transport.send pod payload) eq_uploads;
    Sim.run sim;
    settle sim fed;
    let bytes = Hive.checkpoint (Federation.merged fed) in
    Federation.shutdown fed;
    bytes
  in
  List.iter
    (fun n_shards ->
      assert (merged_bytes n_shards = oracle);
      Printf.printf "merge equality: %d-shard merge == single hive (%d uploads)\n" n_shards
        (List.length eq_uploads))
    [ 1; 2; 4 ];
  assert (merged_bytes 4 = merged_bytes 4);
  Printf.printf "determinism: repeated 4-shard runs byte-identical\n";
  if not smoke then begin
    (* ---- Superstep scaling, shards in {1,2,4,8} ----------------------- *)
    let rounds = 4 in
    let per_round = 10 in
    let slices =
      Array.init rounds (fun round ->
          List.concat_map
            (fun p ->
              List.init per_round (fun i ->
                  let inputs =
                    Array.init p.Ir.n_inputs (fun k ->
                        (((round * 997) + (i * 53) + (k * 19)) mod 211) - 40)
                  in
                  let env = Env.make ~seed:((round * per_round) + i) ~inputs () in
                  upload_of p (Interp.run ~program:p ~env ~sched:Sched.Round_robin ())))
            fed_programs)
    in
    let gap_limit = 4096 in
    (* Shard compute runs under a bounded per-superstep solver budget:
       an unbounded budget lets a handful of deep explorations cost
       seconds each, and no partition can balance work concentrated in
       one verdict.  Bounded verdicts are near-uniform in cost, which
       is what lets hash ownership spread them evenly. *)
    let shard_symexec =
      { Sym_exec.default_config with max_paths = 24; solver_budget = 8_000 }
    in
    let scaling_row n_shards =
      let sim = Sim.create () in
      let config =
        {
          (Federation.default_config ~n_shards ()) with
          Federation.synthesize = false;
          gap_limit;
          shard_hive =
            {
              (Federation.default_config ~n_shards ()).Federation.shard_hive with
              Hive.symexec_config = Some shard_symexec;
            };
        }
      in
      let fed = Federation.create ~config ~sim ~rng:(Rng.create 77) () in
      List.iter (fun p -> ignore (Federation.register_program fed p)) fed_programs;
      let map = Federation.map fed in
      let serial = ref 0.0 and critical = ref 0.0 and merge_s = ref 0.0 in
      Array.iter
        (fun slice ->
          List.iter
            (fun (trace, payload) ->
              let owner = Shard_map.owner_of_bits map trace.Trace.bits in
              Hive.ingest_payload (Federation.shard_hive fed owner) payload)
            slice;
          (* The compute phase, one shard at a time so the critical path
             (the slowest shard) is measurable on any core count. *)
          let times =
            List.init n_shards (fun i ->
                let t0 = Unix.gettimeofday () in
                List.iter
                  (fun k ->
                    let owned (gap : Exec_tree.gap) =
                      Shard_map.owner_of_verdict map ~program:(Knowledge.digest k)
                        ~thread:gap.Exec_tree.site.Ir.thread
                        ~pc:gap.Exec_tree.site.Ir.pc ~direction:gap.Exec_tree.missing
                      = i
                    in
                    ignore
                      (Prover.close_gaps ~config:shard_symexec
                         ~cache:(Knowledge.verdict_cache k)
                         ~memo:(Knowledge.gap_memo k) ~owned ~limit:gap_limit
                         (Knowledge.program k) (Knowledge.tree k)))
                  (Hive.knowledge_list (Federation.shard_hive fed i));
                Unix.gettimeofday () -. t0)
          in
          serial := !serial +. List.fold_left ( +. ) 0.0 times;
          critical := !critical +. List.fold_left Float.max 0.0 times;
          (* The sequential merge: flush the deltas, deliver, commit in
             (shard, seq) order into the coordinator. *)
          let t0 = Unix.gettimeofday () in
          Federation.flush fed;
          Sim.run sim;
          ignore (Federation.commit fed);
          merge_s := !merge_s +. (Unix.gettimeofday () -. t0))
        slices;
      let stats = Federation.stats fed in
      let shard_traces =
        List.map
          (fun s -> s.Federation.hive_stats.Hive.traces_received)
          stats.Federation.per_shard
      in
      let merged_traces =
        List.fold_left
          (fun acc k -> acc + Knowledge.traces_ingested k)
          0
          (Hive.knowledge_list (Federation.merged fed))
      in
      assert (merged_traces = rounds * per_round * List.length fed_programs);
      Federation.shutdown fed;
      let tick_seconds = (!critical +. !merge_s) /. float_of_int rounds in
      (n_shards, !serial, !critical, !merge_s, tick_seconds, shard_traces)
    in
    let rows = List.map scaling_row [ 1; 2; 4; 8 ] in
    let base_tick =
      match rows with (_, _, _, _, tick, _) :: _ -> tick | [] -> assert false
    in
    Tabular.print ~title:"federated superstep scaling (BSP model)"
      [ rcol "shards"; rcol "compute-total-ms"; rcol "critical-path-ms"; rcol "merge-ms";
        rcol "ticks/s"; rcol "speedup"; col "traces/shard" ]
      (List.map
         (fun (n, serial, critical, merge_s, tick, shard_traces) ->
           [
             string_of_int n;
             fmt_f ~decimals:1 (1000.0 *. serial);
             fmt_f ~decimals:1 (1000.0 *. critical);
             fmt_f ~decimals:1 (1000.0 *. merge_s);
             fmt_f ~decimals:1 (1.0 /. tick);
             fmt_f ~decimals:2 (base_tick /. tick);
             String.concat "/" (List.map string_of_int shard_traces);
           ])
         rows);
    let speedup_at n =
      match List.find_opt (fun (m, _, _, _, _, _) -> m = n) rows with
      | Some (_, _, _, _, tick, _) -> base_tick /. tick
      | None -> 0.0
    in
    if speedup_at 4 < 2.0 then
      Printf.printf "WARNING: 4-shard tick speedup %.2fx is below the 2x target\n"
        (speedup_at 4);
    (* ---- Time-to-first-fix ------------------------------------------- *)
    (* Identical upload schedule against a standalone hive and against
       federations: simulated seconds until a fix epoch moves.  The
       coordinator runs its merged analysis every half analysis
       interval — it serves no pods, so the faster cadence is free —
       which pays for the extra flush-then-commit hop a superstep merge
       inserts before evidence reaches the analyzer. *)
    let ttff_program = Corpus.parser in
    let ttff_uploads =
      List.init 40 (fun i ->
          let inputs =
            if i mod 5 = 0 then Corpus.parser_trigger
            else Array.init 3 (fun k -> ((i * 7) + (k * 3)) mod 30)
          in
          let env = Env.make ~seed:i ~inputs () in
          snd (upload_of ttff_program (Interp.run ~program:ttff_program ~env ~sched:Sched.Round_robin ())))
    in
    let horizon = 600.0 in
    let schedule_uploads sim pod =
      List.iteri
        (fun i payload ->
          Sim.schedule_at sim
            ~time:(2.0 +. (1.5 *. float_of_int i))
            (fun () -> Transport.send pod payload))
        ttff_uploads
    in
    let run_until_fix sim epoch_of =
      let rec go () =
        if epoch_of () then Some (Sim.now sim)
        else if Sim.now sim > horizon || not (Sim.step sim) then None
        else go ()
      in
      go ()
    in
    let ttff_single () =
      let sim = Sim.create () in
      let hive = Hive.create ~sim () in
      let k = Hive.register_program hive ttff_program in
      let pod, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 3) () in
      Hive.attach_pod hive hive_end;
      schedule_uploads sim pod;
      Hive.start hive;
      let t = run_until_fix sim (fun () -> Knowledge.epoch k > 0) in
      Hive.shutdown hive;
      t
    in
    let ttff_fed n_shards =
      let sim = Sim.create () in
      let base = Federation.default_config ~n_shards () in
      let config =
        { base with Federation.superstep_interval = base.Federation.superstep_interval /. 2.0 }
      in
      let fed = Federation.create ~config ~sim ~rng:(Rng.create (50 + n_shards)) () in
      let k = Federation.register_program fed ttff_program in
      let pod, router = Transport.endpoint_pair ~sim ~rng:(Rng.create 5) () in
      (* No Sim.run between attach and start: the superstep schedule
         must anchor at t=0, exactly like the single hive's ticks. *)
      Federation.attach_pod fed router;
      schedule_uploads sim pod;
      Federation.start fed;
      let t = run_until_fix sim (fun () -> Knowledge.epoch k > 0) in
      Federation.shutdown fed;
      t
    in
    let fmt_ttff = function Some t -> Printf.sprintf "%.1f" t | None -> "none" in
    let single_ttff = ttff_single () in
    let fed_ttffs = List.map (fun n -> (n, ttff_fed n)) [ 1; 2; 4; 8 ] in
    Printf.printf "time-to-first-fix: single hive %ss" (fmt_ttff single_ttff);
    List.iter (fun (n, t) -> Printf.printf " | %d-shard %ss" n (fmt_ttff t)) fed_ttffs;
    print_newline ();
    let ttff_ok =
      match single_ttff with
      | None -> true
      | Some s ->
        List.for_all (fun (_, t) -> match t with Some t -> t <= s | None -> false) fed_ttffs
    in
    if not ttff_ok then
      Printf.printf "WARNING: a federated time-to-first-fix exceeds the single hive's\n";
    let oc = open_out "BENCH_fed.json" in
    Printf.fprintf oc "{\n  \"suite\": \"fed\",\n";
    Printf.fprintf oc "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
    Printf.fprintf oc "  \"programs\": %d,\n" (List.length fed_programs);
    Printf.fprintf oc "  \"supersteps\": %d,\n" rounds;
    Printf.fprintf oc "  \"single_hive_ttff_seconds\": %s,\n"
      (match single_ttff with Some t -> Printf.sprintf "%.2f" t | None -> "null");
    Printf.fprintf oc "  \"ttff_no_worse_than_single\": %b,\n" ttff_ok;
    Printf.fprintf oc "  \"results\": [\n";
    let last = List.length rows - 1 in
    List.iteri
      (fun i (n, serial, critical, merge_s, tick, _) ->
        let ttff =
          match List.assoc_opt n fed_ttffs with
          | Some (Some t) -> Printf.sprintf "%.2f" t
          | _ -> "null"
        in
        Printf.fprintf oc
          "    { \"shards\": %d, \"compute_total_ms\": %.2f, \"critical_path_ms\": %.2f, \
           \"merge_ms\": %.2f, \"ticks_per_sec\": %.2f, \"tick_speedup\": %.2f, \
           \"ttff_seconds\": %s }%s\n"
          n (1000.0 *. serial) (1000.0 *. critical) (1000.0 *. merge_s) (1.0 /. tick)
          (base_tick /. tick) ttff
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote BENCH_fed.json\n"
  end

(* ==================================================================== *)
(* fleet — fleet-scale ingestion: delta/prefix records, batched        *)
(* frames, parallel decode, sustained load.  The smoke variant runs    *)
(* the wire-reduction and knowledge byte-identity asserts (for         *)
(* @fleet-smoke / `dune runtest`); the full run adds the decode        *)
(* scaling model, a 10^5-pod pressure sweep, and time-to-first-fix,    *)
(* and writes BENCH_fleet.json.                                        *)
(*                                                                     *)
(* Decode scaling is reported in the same BSP style as the fed suite:  *)
(* the parallelizable per-record work (decode + canonicalize + replay  *)
(* precompute — exactly the closure [Hive.decode_batch] ships to the   *)
(* pool) and the serial commit residue are timed separately, so the    *)
(* pool-P throughput (D/P + C) is measurable on any machine —          *)
(* including single-core CI hosts, where a wall-clock pool run can     *)
(* only show time-sharing parity.                                      *)
(* ==================================================================== *)

let fleet_suite ?(smoke = false) () =
  heading
    (if smoke then "fleet-smoke: wire-reduction + knowledge byte-identity asserts"
     else "fleet: sustained-load ingestion at fleet scale (writes BENCH_fleet.json)");
  let prog = Corpus.checksum in
  let digest = Ir.digest prog in
  let trace_of ?(pod = 1) inputs =
    let env = Env.make ~seed:7 ~inputs () in
    Trace.of_result ~program_digest:digest ~pod ~fix_epoch:0
      (Interp.run ~program:prog ~env ~sched:Sched.Round_robin ())
  in
  (* Checksum keeps a constant step count across inputs, so a fleet's
     traces share both the path prefix and the step counter — the shape
     delta records exist for. *)
  let fleet_traces n =
    let rng = Rng.create 23 in
    List.init n (fun i ->
        trace_of ~pod:(1 + (i mod 5))
          (Array.init prog.Ir.n_inputs (fun _ -> Rng.int rng 200)))
  in
  let single_frame t = Protocol.encode (Protocol.Trace_upload (Wire.encode t)) in
  let chunks size xs =
    let rec take n = function
      | x :: rest when n > 0 ->
        let head, tail = take (n - 1) rest in
        (x :: head, tail)
      | rest -> ([], rest)
    in
    let rec go = function
      | [] -> []
      | xs ->
        let head, tail = take size xs in
        head :: go tail
    in
    go xs
  in
  (* The self-anchored frame shape: leading record full, the rest
     delta-encoded against it (no announced basis needed). *)
  let batch_frame ?(delta = true) ~digest chunk =
    let records =
      match chunk with
      | [] -> []
      | first :: rest ->
        Wire.encode_record first
        :: List.map
             (fun t ->
               if delta then Wire.encode_record ~basis:first t else Wire.encode_record t)
             rest
    in
    Protocol.encode
      (Protocol.Batch_upload
         { program_digest = digest; basis_id = 0; basis_check = 0; records })
  in
  let batch_frames ?delta ~size traces =
    List.map (fun c -> batch_frame ?delta ~digest c) (chunks size traces)
  in
  let frame_bytes frames = List.fold_left (fun a f -> a + String.length f) 0 frames in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* ---- Wire reduction (the @fleet-smoke payload, part 1) --------------- *)
  let wire_traces = fleet_traces 512 in
  let n_wire = List.length wire_traces in
  let full_bytes = frame_bytes (List.map single_frame wire_traces) in
  let batched_bytes = frame_bytes (batch_frames ~size:16 wire_traces) in
  let full_per = float_of_int full_bytes /. float_of_int n_wire in
  let batched_per = float_of_int batched_bytes /. float_of_int n_wire in
  let reduction = full_per /. batched_per in
  Printf.printf
    "bytes/trace over %d traces: singles %.1f | batch-16+delta %.1f | %.2fx reduction\n"
    n_wire full_per batched_per reduction;
  assert (reduction >= 2.0);
  (* ---- Knowledge byte-identity (the smoke payload, part 2) ------------- *)
  let make_hive ?(pool_size = 1) ?overload () =
    let sim = Sim.create () in
    let config = { (Hive.default_config Hive.Full) with Hive.pool_size; overload } in
    let hive = Hive.create ~config ~sim () in
    ignore (Hive.register_program hive prog);
    (sim, hive)
  in
  let knowledge_bytes h = Checkpoint.encode (Hive.knowledge_list h) in
  let id_traces = fleet_traces 48 in
  let ingest_frames ?pool_size frames =
    let _, h = make_hive ?pool_size () in
    List.iter (Hive.inject h ~slot:0) frames;
    let bytes = knowledge_bytes h in
    let ingested = (Hive.stats h).Hive.traces_received in
    Hive.shutdown h;
    (bytes, ingested)
  in
  let baseline, base_n = ingest_frames (List.map single_frame id_traces) in
  assert (base_n = List.length id_traces);
  List.iter
    (fun (label, frames, pool_size) ->
      let bytes, n = ingest_frames ~pool_size frames in
      assert (n = List.length id_traces);
      assert (String.equal baseline bytes);
      Printf.printf "knowledge identity: %s == singles (%d traces)\n" label n)
    [
      ("batch-16 delta", batch_frames ~size:16 id_traces, 1);
      ("batch-16 full", batch_frames ~delta:false ~size:16 id_traces, 1);
      ("batch-16 delta, pool-4 decode", batch_frames ~size:16 id_traces, 4);
      ("batch-5 delta", batch_frames ~size:5 id_traces, 1);
    ];
  if not smoke then begin
    (* ---- Parallel decode: serial baseline + BSP model ------------------ *)
    (* A pod-shaped service program for the scaling measurement: the
       same two input-dependent branches as [Corpus.checksum] but a
       much longer deterministic compute loop, so the per-trace replay
       the pool precomputes costs more than the serial commit residue
       (tree merge + store admit) — as it does for real services, whose
       step counts dwarf their decision counts. *)
    let fleet_prog =
      let open Build in
      let open Build.Infix in
      (* Shape matters twice here.  Straight-line mixing keeps the full
         decision path short (every branch evaluation lands in it, and
         the commit-side tree merge walks it per trace) while steps
         climb past a thousand, so replay — the work the pool
         precomputes — dominates the serial residue.  And the sixteen
         input-tainted branches spread the fleet's traces across 2^16
         path signatures: near-every trace is novel content, which is
         precisely when the replay cache cannot help and parallel
         decode earns its keep. *)
      let mix i =
        assign (lvar "acc") ((local "acc" *: const 3) +: const ((i * 7) mod 31))
      in
      let round r =
        List.init 75 (fun i -> mix ((r * 75) + i))
        @ [
            (* Mod an odd prime, not 2: an affine mix only permutes the
               low bit, and a parity branch would collapse the fleet to
               two path signatures. *)
            if_
              (local "acc" %: const 97 >: const 48)
              [ assign (lvar "acc") (local "acc" +: const 1) ]
              [ assign (lvar "acc") (local "acc" -: const 1) ];
          ]
      in
      program ~name:"fleet-service" ~n_inputs:2
        [
          (assign (lvar "acc") (input 0) :: List.concat (List.init 16 round))
          @ [
              if_
                (input 1 >: const 100)
                [ assign (lvar "mode") (const 2) ]
                [ assign (lvar "mode") (const 1) ];
            ];
        ]
    in
    let fleet_digest = Ir.digest fleet_prog in
    let heavy_traces =
      let rng = Rng.create 29 in
      List.init 6400 (fun i ->
          let inputs = [| Rng.int rng 1_000_000; Rng.int rng 200 |] in
          let env = Env.make ~seed:7 ~inputs () in
          Trace.of_result ~program_digest:fleet_digest ~pod:(1 + (i mod 977)) ~fix_epoch:0
            (Interp.run ~program:fleet_prog ~env ~sched:Sched.Round_robin ()))
    in
    let heavy_frames =
      List.map (fun c -> batch_frame ~digest:fleet_digest c) (chunks 64 heavy_traces)
    in
    let n_heavy = List.length heavy_traces in
    (match heavy_traces with
    | t :: _ ->
      Printf.printf "decode workload: %d-step, %d-decision traces\n" t.Trace.steps
        t.Trace.n_decisions
    | [] -> ());
    let pool_run pool_size =
      let _, h = make_hive ~pool_size () in
      ignore (Hive.register_program h fleet_prog);
      let (), wall = timed (fun () -> List.iter (Hive.inject h ~slot:0) heavy_frames) in
      let bytes = knowledge_bytes h in
      let n = (Hive.stats h).Hive.traces_received in
      Hive.shutdown h;
      assert (n = n_heavy);
      (bytes, wall)
    in
    let serial_bytes, t_serial = pool_run 1 in
    (* Pre-encoded record chunks, so the timed region below decodes the
       exact bytes the hive would without paying re-encode cost. *)
    let record_chunks =
      List.map
        (fun chunk ->
          match chunk with
          | [] -> assert false
          | first :: rest ->
            (Wire.encode_record first, List.map (fun t -> Wire.encode_record ~basis:first t) rest))
        (chunks 64 heavy_traces)
    in
    let decode_one ?basis s =
      match Wire.decode_record ?basis ~program_digest:fleet_digest s with
      | Error _ -> assert false
      | Ok trace ->
        let prep = Trace_store.prepare trace in
        let hooks = Fixgen.runtime_hooks ~epoch:trace.Trace.fix_epoch [] in
        (match
           Interp.reconstruct ~hooks ~program:fleet_prog ~bits:trace.Trace.bits
             ~schedule:trace.Trace.schedule ~total_decisions:trace.Trace.n_decisions
             ~total_steps:trace.Trace.steps ()
         with
        | Ok _ -> ()
        | Error _ -> assert false);
        prep
    in
    let (), t_par =
      timed (fun () ->
          List.iter
            (fun (anchor_rec, rest_recs) ->
              let anchor = decode_one anchor_rec in
              List.iter
                (fun s -> ignore (decode_one ~basis:anchor.Trace_store.p_trace s))
                rest_recs)
            record_chunks)
    in
    let t_commit = Float.max 0.0 (t_serial -. t_par) in
    let modeled_tp pool =
      float_of_int n_heavy /. ((t_par /. float_of_int pool) +. t_commit)
    in
    let measured =
      List.map
        (fun pool_size ->
          let bytes, wall = pool_run pool_size in
          assert (String.equal serial_bytes bytes);
          (pool_size, float_of_int n_heavy /. wall))
        [ 2; 4 ]
    in
    let measured_tp p =
      if p = 1 then Some (float_of_int n_heavy /. t_serial)
      else List.assoc_opt p measured
    in
    Tabular.print
      ~title:
        (Printf.sprintf
           "parallel batch decode, %d traces in %d-record frames (parallel fraction %.2f)"
           n_heavy 64 (t_par /. Float.max 1e-9 t_serial))
      [ rcol "pool"; rcol "modeled-traces/s"; rcol "modeled-speedup"; rcol "measured-traces/s" ]
      (List.map
         (fun p ->
           [
             string_of_int p;
             fmt_f ~decimals:0 (modeled_tp p);
             fmt_f ~decimals:2 (modeled_tp p /. modeled_tp 1);
             (match measured_tp p with Some tp -> fmt_f ~decimals:0 tp | None -> "-");
           ])
         [ 1; 2; 4; 8 ]);
    let decode_speedup4 = modeled_tp 4 /. modeled_tp 1 in
    if decode_speedup4 < 1.5 then
      Printf.printf "WARNING: modeled 4-worker decode speedup %.2fx is below the 1.5x target\n"
        decode_speedup4;
    (* ---- Sustained-load pressure sweep, 10^5 pod slots ----------------- *)
    (* Arrival shape per target level: bursts sized so queue occupancy
       lands in the wanted pressure quartile (level = 4*queue/bound),
       spaced so the queue fully drains between bursts.  Level 3 bursts
       exceed the bound outright and must shed. *)
    let n_pods = 100_000 in
    let olc = Hive.default_overload_config in
    let service = olc.Hive.service_interval in
    let bound = olc.Hive.queue_bound in
    let payloads = Array.of_list (List.map single_frame (fleet_traces 64)) in
    let pressure_row target =
      let burst =
        match target with
        | 0 -> 1
        | 1 -> (bound / 4) + 2
        | 2 -> (bound / 2) + 2
        | _ -> 2 * bound
      in
      let spacing =
        Float.max (2.0 *. service)
          (1.5 *. float_of_int (min burst bound + 1) *. service)
      in
      let sim, hive = make_hive ~overload:olc () in
      let peak = ref 0 in
      let sent = ref 0 in
      let next = ref 1.0 in
      while !sent < n_pods do
        let b = min burst (n_pods - !sent) in
        let t0 = !next in
        for j = 0 to b - 1 do
          let slot = !sent + j in
          let payload = payloads.(slot mod Array.length payloads) in
          Sim.schedule_at sim ~time:t0 (fun () -> Hive.inject hive ~slot payload)
        done;
        if burst > 1 then
          Sim.schedule_at sim
            ~time:(t0 +. (0.5 *. service))
            (fun () -> peak := max !peak (Hive.pressure_level hive));
        sent := !sent + b;
        next := t0 +. spacing
      done;
      let sim_end = !next in
      let (), wall = timed (fun () -> Sim.run sim) in
      let s = Hive.stats hive in
      let shed = s.Hive.shed_success + s.Hive.shed_failure in
      let ingested = s.Hive.traces_received in
      assert (ingested + shed = n_pods);
      (match target with
      | 0 -> assert (shed = 0 && !peak = 0)
      | 1 | 2 -> assert (!peak = target)
      | _ -> assert (shed > 0 && !peak = 3));
      ( target,
        burst,
        float_of_int burst /. spacing,
        ingested,
        shed,
        float_of_int shed /. float_of_int n_pods,
        !peak,
        float_of_int ingested /. wall,
        sim_end )
    in
    let sweep = List.map pressure_row [ 0; 1; 2; 3 ] in
    Tabular.print
      ~title:(Printf.sprintf "sustained load, %d pod slots per row" n_pods)
      [ rcol "target"; rcol "burst"; rcol "arrivals/s"; rcol "ingested"; rcol "shed";
        rcol "shed-rate"; rcol "peak-pressure"; rcol "ingest-traces/s" ]
      (List.map
         (fun (target, burst, rate, ingested, shed, shed_rate, peak, tp, _) ->
           [
             string_of_int target;
             string_of_int burst;
             fmt_f ~decimals:1 rate;
             string_of_int ingested;
             string_of_int shed;
             fmt_f ~decimals:3 shed_rate;
             string_of_int peak;
             fmt_f ~decimals:0 tp;
           ])
         sweep);
    (* ---- Time-to-first-fix: singles vs batched uploads ----------------- *)
    (* Identical trace schedule; a batch frame leaves when its last
       member would have, so any TTFF slip is the framing's own cost. *)
    let ttff_prog = Corpus.parser in
    let ttff_digest = Ir.digest ttff_prog in
    let ttff_traces =
      List.init 40 (fun i ->
          let inputs =
            if i mod 5 = 0 then Corpus.parser_trigger
            else Array.init 3 (fun k -> ((i * 7) + (k * 3)) mod 30)
          in
          let env = Env.make ~seed:i ~inputs () in
          Trace.of_result ~program_digest:ttff_digest ~pod:1 ~fix_epoch:0
            (Interp.run ~program:ttff_prog ~env ~sched:Sched.Round_robin ()))
    in
    let upload_time i = 2.0 +. (1.5 *. float_of_int i) in
    let horizon = 600.0 in
    let ttff frames =
      let sim = Sim.create () in
      let hive = Hive.create ~sim () in
      let k = Hive.register_program hive ttff_prog in
      let pod, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 3) () in
      Hive.attach_pod hive hive_end;
      List.iter
        (fun (time, payload) ->
          Sim.schedule_at sim ~time (fun () -> Transport.send pod payload))
        frames;
      Hive.start hive;
      let rec go () =
        if Knowledge.epoch k > 0 then Some (Sim.now sim)
        else if Sim.now sim > horizon || not (Sim.step sim) then None
        else go ()
      in
      let t = go () in
      Hive.shutdown hive;
      t
    in
    let ttff_single = ttff (List.mapi (fun i t -> (upload_time i, single_frame t)) ttff_traces) in
    let ttff_batched =
      ttff
        (List.mapi
           (fun j chunk ->
             ( upload_time ((j * 4) + List.length chunk - 1),
               batch_frame ~digest:ttff_digest chunk ))
           (chunks 4 ttff_traces))
    in
    let fmt_ttff = function Some t -> Printf.sprintf "%.1f" t | None -> "none" in
    Printf.printf "time-to-first-fix: singles %ss | batch-4+delta %ss\n"
      (fmt_ttff ttff_single) (fmt_ttff ttff_batched);
    (* ---- BENCH_fleet.json --------------------------------------------- *)
    let out = open_out "BENCH_fleet.json" in
    let json_ttff = function Some t -> Printf.sprintf "%.2f" t | None -> "null" in
    Printf.fprintf out "{\n  \"suite\": \"fleet\",\n";
    Printf.fprintf out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
    Printf.fprintf out "  \"simulated_pods\": %d,\n" n_pods;
    Printf.fprintf out "  \"bytes_per_trace_full\": %.2f,\n" full_per;
    Printf.fprintf out "  \"bytes_per_trace_batched_delta\": %.2f,\n" batched_per;
    Printf.fprintf out "  \"wire_reduction\": %.2f,\n" reduction;
    Printf.fprintf out "  \"knowledge_identity\": true,\n";
    Printf.fprintf out "  \"decode\": {\n";
    Printf.fprintf out "    \"batch_records\": 64,\n";
    Printf.fprintf out "    \"traces\": %d,\n" n_heavy;
    Printf.fprintf out "    \"parallel_fraction\": %.3f,\n"
      (t_par /. Float.max 1e-9 t_serial);
    Printf.fprintf out "    \"modeled_speedup_pool4\": %.2f,\n" decode_speedup4;
    Printf.fprintf out "    \"pools\": [\n";
    List.iteri
      (fun i p ->
        Printf.fprintf out
          "      { \"pool\": %d, \"modeled_traces_per_sec\": %.0f, \"modeled_speedup\": \
           %.2f, \"measured_traces_per_sec\": %s }%s\n"
          p (modeled_tp p)
          (modeled_tp p /. modeled_tp 1)
          (match measured_tp p with Some tp -> Printf.sprintf "%.0f" tp | None -> "null")
          (if i = 3 then "" else ","))
      [ 1; 2; 4; 8 ];
    Printf.fprintf out "    ]\n  },\n";
    Printf.fprintf out "  \"ttff_singles_seconds\": %s,\n" (json_ttff ttff_single);
    Printf.fprintf out "  \"ttff_batched_seconds\": %s,\n" (json_ttff ttff_batched);
    Printf.fprintf out "  \"results\": [\n";
    let last = List.length sweep - 1 in
    List.iteri
      (fun i (target, burst, rate, ingested, shed, shed_rate, peak, tp, sim_end) ->
        Printf.fprintf out
          "    { \"target_pressure\": %d, \"burst\": %d, \"arrivals_per_sec\": %.1f, \
           \"pods\": %d, \"ingested\": %d, \"shed\": %d, \"shed_rate\": %.3f, \
           \"peak_pressure\": %d, \"ingest_traces_per_sec\": %.0f, \
           \"sim_seconds\": %.0f, \"bytes_per_trace_full\": %.2f, \
           \"bytes_per_trace_batched_delta\": %.2f }%s\n"
          target burst rate n_pods ingested shed shed_rate peak tp sim_end full_per
          batched_per
          (if i = last then "" else ","))
      sweep;
    Printf.fprintf out "  ]\n}\n";
    close_out out;
    Printf.printf "wrote BENCH_fleet.json\n"
  end

(* --------------------------------------------------------------------- *)
(* rollout — staged fix rollout vs naive instant-fleet deployment.  A    *)
(* sabotaged fix (an over-broad immunity set that livelocks benign       *)
(* schedules) is injected mid-run.  Deployed instantly fleet-wide it     *)
(* degrades every pod forever; staged through a canary cohort the hive's *)
(* health test retracts it, and only the cohort was ever exposed.  A     *)
(* second pair of runs shows the price of staging a GOOD fix: promotion  *)
(* lands within two analysis ticks of instant deployment.  Emits         *)
(* BENCH_rollout.json.                                                   *)
(* --------------------------------------------------------------------- *)

(* The bad-fix arms run a *benign* lock-rich program: two append paths
   with globally consistent acquisition orders (2<0 and 1<2 — acyclic),
   so every schedule completes and the fleet's natural failure rate is
   zero.  That makes the saboteur's damage unmistakable: its over-broad
   immunity set [0;1] makes the 2→0 thread defer while the 1→2 thread
   blocks on the lock it holds, livelocking ~70% of schedules into
   [Hang].  (On a program with a real deadlock the natural failure
   rate would mask the harm signal — and once the genuine immunity fix
   is fleet-wide, the merged pattern sets serialize the saboteur's
   livelock away entirely.) *)
let audit_ledger =
  Build.(
    Infix.(
      program ~name:"audit-ledger" ~globals:[ "entries" ] ~n_inputs:1 ~n_locks:3
        [
          [ assign (gvar "entries") (const 0) ];
          [
            lock 2;
            yield;
            lock 0;
            assign (gvar "entries") (glob "entries" +: const 1);
            unlock 0;
            unlock 2;
          ];
          [
            lock 1;
            yield;
            lock 2;
            assign (gvar "entries") (glob "entries" +: const 2);
            unlock 2;
            unlock 1;
          ];
        ]))

let rollout_suite ?(smoke = false) () =
  let module Fix_lifecycle = Softborg_hive.Fix_lifecycle in
  heading
    (if smoke then
       "rollout-smoke: retraction, cohort determinism, shard/pool identity asserts"
     else "rollout: staged canary rollout vs naive instant-fleet deployment");
  let duration = if smoke then 240.0 else 900.0 in
  let sample_interval = 15.0 in
  (* 36 pods at a 12.5% canary fraction: every plausible fix id (the
     saboteur's 1_000_000+k as well as synthesized ids 1..4) lands a
     non-empty cohort well under the 30% exposure bar — the rendezvous
     hash is a pure function, so this is checkable up front. *)
  let n_pods = 36 in
  let inject_at = if smoke then 60.0 else 120.0 in
  let staged_config =
    {
      Fix_lifecycle.default_config with
      Fix_lifecycle.canary_mils = 125;
      min_exposed = 4;
      min_control = 8;
      (* Hold unsampled canaries longer than the default: with a small
         cohort the verdict should come from evidence, not a timeout. *)
      max_hold_ticks = 6;
    }
  in
  let arm ?(rollout = false) ?(bad_fix = false) ?(shards = 1) ?(pool = 1) program =
    let c = Scenario.single_program ~seed:9 program in
    let c = { c with Platform.duration; n_pods; sample_interval } in
    (* Halved arrival rate and a tighter step ceiling keep the naive
       arm affordable: a livelocked session burns its whole budget. *)
    let c =
      {
        c with
        Platform.pod_config =
          { c.Platform.pod_config with Pod.arrival_rate = 0.5; max_steps = 4_000 };
        hive_config = { c.Platform.hive_config with Hive.pool_size = pool };
      }
    in
    let c = if rollout then Scenario.with_rollout ~rollout:staged_config c else c in
    let c = if bad_fix then Scenario.inject_bad_fix ~at:inject_at c else c in
    if shards > 1 then Scenario.with_shards shards c else c
  in
  let first_time pred report =
    List.find_opt pred report.Platform.snapshots |> Option.map (fun s -> s.Metrics.time)
  in
  let rate report = Metrics.failure_rate report.Platform.final in
  (* Injected fixes mint ids from 1_000_000 up; synthesized ones count
     from 1 — so the saboteur's fate is identifiable in the ledger. *)
  let injected_retracted report =
    List.concat_map
      (fun k -> List.filter (fun id -> id >= 1_000_000) (Knowledge.retracted_ids k))
      report.Platform.knowledge
  in
  (* ---- the saboteur over the benign lock-rich audit-ledger ---- *)
  let baseline = Platform.run (arm audit_ledger) in
  let naive = Platform.run (arm ~bad_fix:true audit_ledger) in
  let staged = Platform.run (arm ~rollout:true ~bad_fix:true audit_ledger) in
  let bad_id =
    match injected_retracted staged with
    | [ id ] -> id
    | ids ->
      failwith (Printf.sprintf "rollout: expected one retracted saboteur, got %d" (List.length ids))
  in
  let cohort_size =
    List.length
      (List.filter
         (fun i ->
           Fix_lifecycle.in_cohort ~cohort:i ~fix_id:bad_id
             ~mils:staged_config.Fix_lifecycle.canary_mils)
         (List.init n_pods Fun.id))
  in
  let cohort_fraction = float_of_int cohort_size /. float_of_int n_pods in
  let ttr =
    match first_time (fun s -> s.Metrics.fix_retractions > 0) staged with
    | Some t -> t -. inject_at
    | None -> failwith "rollout: staged run never retracted the saboteur"
  in
  let analysis_interval =
    (arm audit_ledger).Platform.hive_config.Hive.analysis_interval
  in
  Printf.printf "baseline (no saboteur):      failure rate %.4f\n" (rate baseline);
  Printf.printf "naive instant-fleet:         failure rate %.4f, retractions %d, exposed all %d pods\n"
    (rate naive) naive.Platform.final.Metrics.fix_retractions n_pods;
  Printf.printf
    "staged canary (%.1f%% cohort): failure rate %.4f, retracted fix %d in %.0fs, %d/%d pods exposed\n"
    (float_of_int staged_config.Fix_lifecycle.canary_mils /. 10.0)
    (rate staged) bad_id ttr cohort_size n_pods;
  assert (naive.Platform.final.Metrics.fix_retractions = 0);
  assert (staged.Platform.final.Metrics.fix_retractions >= 1);
  (* The acceptance bar: retraction is automatic and fast, exposure
     stays under 30% of the fleet, and the fleet ends the run as
     healthy as if the saboteur had never existed (within 10%). *)
  assert (ttr <= (4.0 *. analysis_interval) +. sample_interval);
  assert (cohort_fraction < 0.3);
  assert (staged.Platform.final.Metrics.pods_exposed <= cohort_size + 1);
  (* A canary pod hangs for the sampling window, so short smoke runs
     get a little absolute headroom; the full run must meet the bar. *)
  let eps = if smoke then 0.02 else 0.005 in
  assert (rate staged <= (rate baseline *. 1.1) +. eps);
  assert (rate naive > rate staged);
  (* ---- the cost of staging a good fix: parser's synthesized guard ---- *)
  let instant = Platform.run (arm Corpus.parser) in
  let staged_good = Platform.run (arm ~rollout:true Corpus.parser) in
  let ttff_instant =
    match first_time (fun s -> s.Metrics.fixes_deployed > 0) instant with
    | Some t -> t
    | None -> failwith "rollout: instant run never deployed the parser fix"
  in
  let ttff_staged =
    match first_time (fun s -> s.Metrics.fix_promotions > 0) staged_good with
    | Some t -> t
    | None -> failwith "rollout: staged run never promoted the parser fix"
  in
  Printf.printf
    "good fix fleet-wide: instant %.0fs, staged %.0fs (promotion lag %.0fs, tick %.0fs)\n"
    ttff_instant ttff_staged (ttff_staged -. ttff_instant) analysis_interval;
  assert (ttff_staged -. ttff_instant <= (2.0 *. analysis_interval) +. sample_interval);
  assert (staged_good.Platform.final.Metrics.fix_retractions = 0);
  (* ---- determinism: the retraction outcome is a pure function of the
     evidence — same verdict, same ledger, same cohort for any shard
     count, and byte-identical reports for any analysis pool size. ---- *)
  let shard_counts = [ 1; 2; 4 ] in
  let shard_runs =
    List.map
      (fun shards ->
        (shards, Platform.run (arm ~rollout:true ~bad_fix:true ~shards audit_ledger)))
      shard_counts
  in
  List.iter
    (fun (shards, r) ->
      Printf.printf "shards=%d: retracted=%s exposed=%d\n" shards
        (String.concat "," (List.map string_of_int (injected_retracted r)))
        r.Platform.final.Metrics.pods_exposed;
      (* Every shard republishes the coordinator's ledger, so dedupe
         before comparing against the single-hive verdict. *)
      assert (List.sort_uniq Int.compare (injected_retracted r) = [ bad_id ]);
      assert (r.Platform.final.Metrics.pods_exposed <= cohort_size + 1))
    shard_runs;
  let pool_sizes = [ 1; 2; 4 ] in
  let pool_reports =
    List.map
      (fun pool ->
        Format.asprintf "%a" Platform.pp_report
          (Platform.run (arm ~rollout:true ~bad_fix:true ~pool audit_ledger)))
      pool_sizes
  in
  (match pool_reports with
  | first :: rest -> List.iter (fun r -> assert (r = first)) rest
  | [] -> ());
  Printf.printf "pool sizes %s: reports byte-identical\n"
    (String.concat "/" (List.map string_of_int pool_sizes));
  if smoke then Printf.printf "rollout-smoke: all asserts passed\n"
  else begin
    let out = open_out "BENCH_rollout.json" in
    Printf.fprintf out "{\n";
    Printf.fprintf out "  \"config\": { \"n_pods\": %d, \"duration_s\": %.0f, \"inject_at_s\": %.0f, \"canary_mils\": %d },\n"
      n_pods duration inject_at staged_config.Fix_lifecycle.canary_mils;
    Printf.fprintf out "  \"bad_fix\": {\n";
    Printf.fprintf out "    \"baseline_failure_rate\": %.5f,\n" (rate baseline);
    Printf.fprintf out
      "    \"naive\": { \"final_failure_rate\": %.5f, \"retracted\": false, \"peak_exposed_fraction\": 1.0 },\n"
      (rate naive);
    Printf.fprintf out
      "    \"staged\": { \"final_failure_rate\": %.5f, \"retracted\": true, \
       \"time_to_retraction_s\": %.0f, \"peak_exposed_fraction\": %.3f, \
       \"exposed_pods\": %d }\n"
      (rate staged) ttr cohort_fraction staged.Platform.final.Metrics.pods_exposed;
    Printf.fprintf out "  },\n";
    Printf.fprintf out
      "  \"good_fix\": { \"ttff_instant_s\": %.0f, \"ttff_staged_s\": %.0f, \
       \"promotion_lag_s\": %.0f, \"analysis_interval_s\": %.0f },\n"
      ttff_instant ttff_staged (ttff_staged -. ttff_instant) analysis_interval;
    Printf.fprintf out "  \"determinism\": {\n";
    Printf.fprintf out "    \"shard_counts\": [%s],\n"
      (String.concat ", " (List.map (fun (s, _) -> string_of_int s) shard_runs));
    Printf.fprintf out "    \"retracted_ids_identical\": true,\n";
    Printf.fprintf out "    \"pool_sizes\": [%s],\n"
      (String.concat ", " (List.map string_of_int pool_sizes));
    Printf.fprintf out "    \"pool_reports_byte_identical\": true\n";
    Printf.fprintf out "  }\n}\n";
    close_out out;
    Printf.printf "wrote BENCH_rollout.json\n"
  end

let experiments =
  [
    ("e1", "reliability grows with use (Fig 1)", e1);
    ("e2", "collective execution trees (Figs 2-3)", e2);
    ("e3", "SAT portfolio 10x-at-3x claim", e3);
    ("e4", "execution guidance", e4);
    ("e5", "sampling vs isolation", e5);
    ("e6", "deadlock immunity", e6);
    ("e7", "SoftBorg vs WER vs CBI", e7);
    ("e8", "relaxed consistency", e8);
    ("e9", "privacy vs utility", e9);
    ("e10", "portfolio allocation", e10);
    ("e11", "cumulative proofs", e11);
    ("e12", "three-way comparison under faults (chaos harness)", e12);
    ("chaos-smoke", "scripted fault plan with embedded asserts for @chaos-smoke", chaos_smoke);
    ("e13", "overload protection: graceful degradation under spikes", e13);
    ("overload-smoke", "overload + byte-identity asserts for @overload-smoke", overload_smoke);
    ("micro", "hot-path micro-benchmarks", micro);
    ("micro-ingest", "ingestion/analytics benchmarks (writes BENCH_ingest.json)", fun () ->
      micro_ingest ());
    ("micro-ingest-smoke", "tiny micro-ingest run for @bench-smoke", fun () ->
      micro_ingest ~smoke:true ());
    ("micro-solver", "solver racing benchmarks (writes BENCH_solver.json)", fun () ->
      micro_solver ());
    ("micro-solver-smoke", "tiny micro-solver run for @bench-smoke", fun () ->
      micro_solver ~smoke:true ());
    ("micro-vm", "bytecode VM vs tree-walk throughput (writes BENCH_vm.json)", fun () ->
      micro_vm ());
    ("micro-vm-smoke", "tiny micro-vm run with engine-equivalence asserts for @vm-smoke",
      fun () -> micro_vm ~smoke:true ());
    ("repair", "corpus-bench repair scoring (writes BENCH_repair.json)", fun () ->
      repair_suite ());
    ("repair-smoke", "seed-1 corpus through the full scoring pipeline for @repair-smoke",
      fun () -> repair_suite ~smoke:true ());
    ("fed", "N-shard federation scaling + time-to-first-fix (writes BENCH_fed.json)",
      fun () -> fed_suite ());
    ("fed-smoke", "N-shard-equals-single-hive merge asserts for @fed-smoke",
      fun () -> fed_suite ~smoke:true ());
    ("fleet", "fleet-scale ingestion: wire reduction, parallel decode, pressure sweep (writes BENCH_fleet.json)",
      fun () -> fleet_suite ());
    ("fleet-smoke", "wire-reduction + knowledge byte-identity asserts for @fleet-smoke",
      fun () -> fleet_suite ~smoke:true ());
    ("rollout", "staged canary rollout vs naive instant-fleet (writes BENCH_rollout.json)",
      fun () -> rollout_suite ());
    ("rollout-smoke", "bad-fix retraction + cohort/shard/pool determinism asserts for @rollout-smoke",
      fun () -> rollout_suite ~smoke:true ());
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map (fun (id, _, _) -> id) experiments
  in
  List.iter
    (fun id ->
      match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
      | Some (_, _, f) -> f ()
      | None -> Printf.eprintf "unknown experiment %s\n" id)
    selected
