(* Tests for the staged fix rollout: deterministic canary cohorts, the
   sequential canary-vs-control health test, the lifecycle checkpoint
   codec, quarantine of retracted-fix evidence, and the monotonic
   epoch guard that keeps an adversarial (duplicating, reordering)
   transport from ever resurrecting a retracted fix. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Protocol = Softborg_hive.Protocol
module Guidance = Softborg_hive.Guidance
module Fixgen = Softborg_hive.Fixgen
module Fix_lifecycle = Softborg_hive.Fix_lifecycle
module Knowledge = Softborg_hive.Knowledge
module Corpus_bench = Softborg_corpus.Corpus_bench
module Pod = Softborg_pod.Pod
module Rng = Softborg_util.Rng
module Codec = Softborg_util.Codec
module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ---- Cohorts ----------------------------------------------------------- *)

let test_cohort_deterministic () =
  (* Pure function of (cohort, fix id): same answer on every call, and
     any two evaluation orders agree — what makes membership replayable
     across pool sizes, shard counts, and restores. *)
  let sample = List.init 200 (fun c -> List.init 5 (fun f -> Fix_lifecycle.in_cohort ~cohort:c ~fix_id:(f + 1) ~mils:125)) in
  let again = List.init 200 (fun c -> List.init 5 (fun f -> Fix_lifecycle.in_cohort ~cohort:c ~fix_id:(f + 1) ~mils:125)) in
  checkb "replayable" true (sample = again);
  checkb "hash non-negative" true (Fix_lifecycle.cohort_hash ~cohort:max_int ~fix_id:max_int >= 0)

let test_cohort_fraction () =
  let n = 10_000 in
  let count fix_id =
    let hits = ref 0 in
    for c = 0 to n - 1 do
      if Fix_lifecycle.in_cohort ~cohort:c ~fix_id ~mils:125 then incr hits
    done;
    !hits
  in
  List.iter
    (fun fix_id ->
      let hits = count fix_id in
      checkb
        (Printf.sprintf "fix %d cohort ~12.5%% of fleet (got %d/%d)" fix_id hits n)
        true
        (hits > 900 && hits < 1600))
    [ 1; 2; 3 ];
  (* Different fixes draw different cohorts — rendezvous hashing, not a
     single static canary pool that eats every experiment. *)
  let same = ref 0 in
  for c = 0 to n - 1 do
    if
      Fix_lifecycle.in_cohort ~cohort:c ~fix_id:1 ~mils:125
      = Fix_lifecycle.in_cohort ~cohort:c ~fix_id:2 ~mils:125
    then incr same
  done;
  checkb "cohorts differ across fixes" true (!same < n)

let test_cohort_extremes () =
  checkb "0 mils excludes everyone" false (Fix_lifecycle.in_cohort ~cohort:3 ~fix_id:1 ~mils:0);
  checkb "1000 mils includes everyone" true
    (List.for_all
       (fun c -> Fix_lifecycle.in_cohort ~cohort:c ~fix_id:1 ~mils:1000)
       (List.init 100 Fun.id))

(* ---- The sequential health test ---------------------------------------- *)

let config =
  {
    Fix_lifecycle.default_config with
    Fix_lifecycle.min_exposed = 4;
    min_control = 4;
    promote_after = 100;
    max_hold_ticks = 1000;
  }

let entry ?(exposed = 0) ?(exposed_failures = 0) ?(control = 0) ?(control_failures = 0)
    ?(misfires = 0) ?(ticks = 0) () =
  let e = Fix_lifecycle.create_entry ~fix_id:1 ~stage:Fix_lifecycle.Canary in
  for i = 1 to exposed do
    Fix_lifecycle.observe e ~exposed:true ~failed:(i <= exposed_failures)
      ~bucket:"crash:assert@0:1" ~hook_fires:0
  done;
  for i = 1 to control do
    Fix_lifecycle.observe e ~exposed:false ~failed:(i <= control_failures)
      ~bucket:"crash:assert@0:1" ~hook_fires:0
  done;
  for _ = 1 to misfires do
    Fix_lifecycle.observe e ~exposed:true ~failed:false ~bucket:"" ~hook_fires:1
  done;
  e.Fix_lifecycle.ticks_held <- ticks;
  e

let is_retract = function Fix_lifecycle.Retract _ -> true | _ -> false

let test_decide_holds_below_minimum () =
  (* Harmful-looking but under-sampled: no verdict yet. *)
  checkb "hold" true
    (Fix_lifecycle.decide config (entry ~exposed:3 ~exposed_failures:3 ~control:2 ())
    = Fix_lifecycle.Hold)

let test_decide_retracts_on_harm () =
  let e = entry ~exposed:8 ~exposed_failures:6 ~control:8 ~control_failures:1 () in
  checkb "harm retracts" true (is_retract (Fix_lifecycle.decide config e));
  (* Equal rates: no harm signal. *)
  let ok = entry ~exposed:8 ~exposed_failures:1 ~control:8 ~control_failures:1 () in
  checkb "matched rates hold" true (Fix_lifecycle.decide config ok = Fix_lifecycle.Hold)

let test_decide_retracts_on_novel_bucket () =
  let e = Fix_lifecycle.create_entry ~fix_id:1 ~stage:Fix_lifecycle.Canary in
  (* Both cohorts fail at the same rate — no failure-rate harm — but
     the exposed failures land in a bucket the control fleet has never
     produced: a new kind of misbehavior, introduced by the fix. *)
  for i = 1 to 8 do
    Fix_lifecycle.observe e ~exposed:false ~failed:(i <= 3) ~bucket:"crash:old" ~hook_fires:0;
    Fix_lifecycle.observe e ~exposed:true ~failed:(i <= 3) ~bucket:"hang" ~hook_fires:0
  done;
  (match Fix_lifecycle.decide config e with
  | Fix_lifecycle.Retract reason ->
    checkb "reason names the bucket" true
      (String.length reason >= 12 && String.sub reason 0 12 = "novel-bucket")
  | _ -> Alcotest.fail "expected a novel-bucket retraction");
  (* The same novelty without the sample floor is no verdict at all. *)
  let tiny = Fix_lifecycle.create_entry ~fix_id:2 ~stage:Fix_lifecycle.Canary in
  for _ = 1 to config.Fix_lifecycle.novel_bucket_k do
    Fix_lifecycle.observe tiny ~exposed:true ~failed:true ~bucket:"hang" ~hook_fires:0
  done;
  checkb "novelty waits for samples" true (Fix_lifecycle.decide config tiny = Fix_lifecycle.Hold)

let test_decide_misfire_needs_clean_control () =
  (* Misfires on a workload the control shows benign: retract. *)
  let noisy = entry ~exposed:8 ~control:8 ~misfires:8 () in
  checkb "misfire retracts" true (is_retract (Fix_lifecycle.decide config noisy));
  (* Same misfires, but the control also fails: the workload is not
     benign, so hook fires are the fix doing its job (a deadlock
     immunity deferring on genuinely dangerous schedules). *)
  let working = entry ~exposed:8 ~control:8 ~control_failures:2 ~misfires:8 () in
  checkb "misfire needs clean control" false
    (is_retract (Fix_lifecycle.decide config working))

let test_decide_promotes () =
  (* Early promotion on sample size. *)
  let big =
    entry ~exposed:(config.Fix_lifecycle.promote_after + 4) ~control:8 ()
  in
  checkb "promotes on volume" true (Fix_lifecycle.decide config big = Fix_lifecycle.Promote);
  (* Time-bounded promotion: a healthy canary cannot be held forever. *)
  let held = entry ~exposed:5 ~control:5 ~ticks:config.Fix_lifecycle.max_hold_ticks () in
  checkb "promotes on hold timeout" true
    (Fix_lifecycle.decide config held = Fix_lifecycle.Promote);
  (* Only canaries get verdicts. *)
  let fleet = entry ~exposed:200 ~control:8 () in
  fleet.Fix_lifecycle.stage <- Fix_lifecycle.Fleet;
  checkb "fleet entries hold" true (Fix_lifecycle.decide config fleet = Fix_lifecycle.Hold)

let test_entries_roundtrip () =
  let a = entry ~exposed:7 ~exposed_failures:2 ~control:9 ~control_failures:1 ~misfires:3 ~ticks:2 () in
  let b = Fix_lifecycle.create_entry ~fix_id:5 ~stage:Fix_lifecycle.Retracted in
  b.Fix_lifecycle.retired_epoch <- 4;
  let w = Codec.Writer.create () in
  Fix_lifecycle.write_entries w [ b; a ] (* unsorted on purpose *);
  let bytes = Codec.Writer.contents w in
  let entries = Fix_lifecycle.read_entries (Codec.Reader.of_string bytes) in
  checki "both back" 2 (List.length entries);
  let a' = List.find (fun e -> e.Fix_lifecycle.fix_id = 1) entries in
  let b' = List.find (fun e -> e.Fix_lifecycle.fix_id = 5) entries in
  checkb "stage kept" true (b'.Fix_lifecycle.stage = Fix_lifecycle.Retracted);
  checki "retired epoch kept" 4 b'.Fix_lifecycle.retired_epoch;
  checki "exposed runs kept" 10 a'.Fix_lifecycle.health.Fix_lifecycle.exposed_runs;
  checki "misfires kept" 3 a'.Fix_lifecycle.health.Fix_lifecycle.misfires;
  checki "ticks kept" 2 a'.Fix_lifecycle.ticks_held;
  (* Canonical bytes: writing the decoded entries again is identity. *)
  let w2 = Codec.Writer.create () in
  Fix_lifecycle.write_entries w2 entries;
  checks "canonical" bytes (Codec.Writer.contents w2)

(* ---- Knowledge: canary staging, retraction, quarantine ------------------ *)

let run_parser inputs =
  Interp.run ~program:Corpus.parser ~env:(Env.make ~seed:1 ~inputs ()) ~sched:Sched.Round_robin ()

let attributed_trace ~epoch ~active outcome_inputs =
  Trace.of_result ~program_digest:(Ir.digest Corpus.parser) ~pod:0 ~fix_epoch:epoch
    ~attribution:{ Trace.active_fixes = active; hook_fires = 0 }
    (run_parser outcome_inputs)

let crash_site () =
  match (run_parser Corpus.parser_trigger).Interp.outcome with
  | Outcome.Crash { site; _ } -> site
  | _ -> Alcotest.fail "trigger should crash"

let rollout = { config with Fix_lifecycle.min_exposed = 2; min_control = 2 }

let test_knowledge_stages_and_retracts () =
  let k = Knowledge.create Corpus.parser in
  Knowledge.set_rollout k (Some rollout);
  let fix =
    Knowledge.add_fix k
      (Fixgen.Crash_suppression
         { bucket = "b"; site = crash_site (); crash_kind = Outcome.Assertion_failure })
  in
  checki "staged as canary" 1 (List.length (Knowledge.canary_ids k));
  checkb "canary still deploys" true
    (List.exists (fun (f : Fixgen.fix) -> f.Fixgen.id = fix.Fixgen.id) (Knowledge.live_fixes k));
  let epoch0 = Knowledge.epoch k in
  (* Canary cohort crashes where the control fleet is healthy. *)
  let benign = [| 0; 0; 0 |] in
  for _ = 1 to 3 do
    Knowledge.ingest_outcome_only k
      (attributed_trace ~epoch:epoch0 ~active:[ fix.Fixgen.id ] Corpus.parser_trigger);
    Knowledge.ingest_outcome_only k (attributed_trace ~epoch:epoch0 ~active:[] benign)
  done;
  let promoted, condemned = Knowledge.lifecycle_tick k in
  checki "nothing promoted" 0 (List.length promoted);
  (match condemned with
  | [ (id, _reason) ] -> checki "the canary condemned" fix.Fixgen.id id
  | _ -> Alcotest.fail "expected exactly one retraction");
  checki "retracted recorded" 1 (List.length (Knowledge.retracted_ids k));
  checki "no live fixes" 0 (List.length (Knowledge.live_fixes k));
  checki "id continuity" 1 (List.length (Knowledge.fixes k));
  checkb "retraction bumps the epoch" true (Knowledge.epoch k > epoch0);
  (* Evidence recorded under the retracted fix is quarantined, keeping
     knowledge bytes a pure function of the accepted-trace multiset. *)
  let ingested0 = Knowledge.traces_ingested k in
  Knowledge.ingest_outcome_only k
    (attributed_trace ~epoch:epoch0 ~active:[ fix.Fixgen.id ] Corpus.parser_trigger);
  checki "quarantined" 1 (Knowledge.quarantined_traces k);
  checki "not counted as evidence" ingested0 (Knowledge.traces_ingested k);
  (* Unattributed and clean-attributed traffic still flows. *)
  Knowledge.ingest_outcome_only k (attributed_trace ~epoch:(Knowledge.epoch k) ~active:[] benign);
  checki "clean traffic admitted" (ingested0 + 1) (Knowledge.traces_ingested k)

let test_knowledge_promotes_healthy_canary () =
  let k = Knowledge.create Corpus.parser in
  Knowledge.set_rollout k (Some { rollout with Fix_lifecycle.max_hold_ticks = 2 });
  let fix =
    Knowledge.add_fix k
      (Fixgen.Crash_suppression
         { bucket = "b"; site = crash_site (); crash_kind = Outcome.Assertion_failure })
  in
  (* No harm evidence ever arrives; the hold bound promotes it. *)
  checki "held first tick" 0 (List.length (fst (Knowledge.lifecycle_tick k)));
  (match Knowledge.lifecycle_tick k with
  | [ id ], [] -> checki "promoted" fix.Fixgen.id id
  | _ -> Alcotest.fail "expected promotion on the second tick");
  checki "no canaries left" 0 (List.length (Knowledge.canary_ids k));
  checki "still live" 1 (List.length (Knowledge.live_fixes k))

let test_adopt_fixes_is_monotonic () =
  let k = Knowledge.create Corpus.parser in
  let fix =
    { Fixgen.id = 7; epoch = 5;
      kind = Fixgen.Crash_suppression
          { bucket = "b"; site = crash_site (); crash_kind = Outcome.Assertion_failure } }
  in
  Knowledge.adopt_fixes k ~fixes:[ fix ] ~epoch:5 ~retracted:[];
  checki "adopted" 5 (Knowledge.epoch k);
  (* A stale (reordered) adoption must not regress the fix set. *)
  Knowledge.adopt_fixes k ~fixes:[] ~epoch:3 ~retracted:[];
  checki "stale dropped" 5 (Knowledge.epoch k);
  checki "fix kept" 1 (List.length (Knowledge.fixes k));
  (* A duplicated adoption at the same epoch is equally inert. *)
  Knowledge.adopt_fixes k ~fixes:[] ~epoch:5 ~retracted:[ 7 ];
  checki "duplicate dropped" 0 (List.length (Knowledge.retracted_ids k));
  (* The genuine retraction advances. *)
  Knowledge.adopt_fixes k ~fixes:[ fix ] ~epoch:6 ~retracted:[ 7 ];
  checki "retraction adopted" 1 (List.length (Knowledge.retracted_ids k));
  checki "retracted not live" 0 (List.length (Knowledge.live_fixes k))

(* ---- Pod: adversarial transport cannot resurrect a retracted fix -------- *)

(* One guided run of the parser's trigger inputs: the deterministic
   way to make a pod exercise the planted assertion. *)
let guidance_frame () =
  Protocol.encode
    (Protocol.Guidance_update
       {
         program_digest = Ir.digest Corpus.parser;
         directives =
           [
             Guidance.Cover_direction
               {
                 site = { Ir.thread = 0; pc = 1 };
                 direction = true;
                 test =
                   {
                     Softborg_symexec.Testgen.inputs = Array.copy Corpus.parser_trigger;
                     fault_plan = Env.No_faults;
                   };
               };
           ];
         pressure = 0;
       })

let make_pod () =
  let sim = Sim.create () in
  let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 7) () in
  let pod =
    Pod.create
      ~config:{ Pod.default_config with Pod.attribute_fixes = true }
      ~cohort:0 ~sim ~rng:(Rng.create 11) ~program:Corpus.parser ~endpoint:pod_end ()
  in
  (sim, pod, hive_end)

let test_pod_epoch_guard_survives_adversarial_replay () =
  let sim, pod, hive_end = make_pod () in
  let digest = Ir.digest Corpus.parser in
  let fix =
    { Fixgen.id = 9; epoch = 1;
      kind = Fixgen.Crash_suppression
          { bucket = "b"; site = crash_site (); crash_kind = Outcome.Assertion_failure } }
  in
  let deploy =
    Protocol.encode
      (Protocol.Fix_update
         { program_digest = digest; epoch = 1; fixes = [ fix ]; canary = []; canary_mils = 0;
           pressure = 0 })
  in
  let retract =
    Protocol.encode
      (Protocol.Fix_retract
         { program_digest = digest; epoch = 2; retracted = [ 9 ]; fixes = []; canary = [];
           canary_mils = 0; pressure = 0 })
  in
  Transport.send hive_end deploy;
  Sim.run sim;
  checki "deployed" 1 (Pod.metrics pod).Pod.fix_epoch;
  Transport.send hive_end retract;
  Sim.run sim;
  checki "retracted" 2 (Pod.metrics pod).Pod.fix_epoch;
  (* The adversary replays the original deployment — duplicated and
     reordered past the retraction.  The monotonic epoch guard must
     drop it: the retracted fix never comes back. *)
  Transport.send hive_end deploy;
  Transport.send hive_end deploy;
  Sim.run sim;
  checki "stale replay dropped" 2 (Pod.metrics pod).Pod.fix_epoch;
  (* Duplicate retraction is idempotent. *)
  Transport.send hive_end retract;
  Sim.run sim;
  checki "idempotent" 2 (Pod.metrics pod).Pod.fix_epoch;
  (* With the suppression genuinely gone, the trigger crashes again:
     behavioral proof the fix is not silently still installed. *)
  Transport.send hive_end (guidance_frame ());
  Sim.run sim;
  Pod.start pod;
  Sim.run ~until:10.0 sim;
  checki "no averted crash after retraction" 0 (Pod.metrics pod).Pod.averted_crashes;
  checkb "the trigger fails again" true ((Pod.metrics pod).Pod.guided_failures >= 1)

let test_pod_canary_membership () =
  (* A canary-staged fix only activates on pods whose cohort hash says
     so; everyone else keeps running without it (the control group). *)
  let digest = Ir.digest Corpus.parser in
  let fix =
    { Fixgen.id = 3; epoch = 1;
      kind = Fixgen.Crash_suppression
          { bucket = "b"; site = crash_site (); crash_kind = Outcome.Assertion_failure } }
  in
  let exposed_cohort, control_cohort =
    let rec find c =
      if c > 10_000 then Alcotest.fail "no cohort split found"
      else
        let m = Fix_lifecycle.in_cohort ~cohort:c ~fix_id:3 ~mils:500 in
        let m' = Fix_lifecycle.in_cohort ~cohort:(c + 1) ~fix_id:3 ~mils:500 in
        if m && not m' then (c, c + 1) else if m' && not m then (c + 1, c) else find (c + 1)
    in
    find 0
  in
  let run cohort =
    let sim = Sim.create () in
    let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 7) () in
    let pod =
      Pod.create
        ~config:{ Pod.default_config with Pod.attribute_fixes = true }
        ~cohort ~sim ~rng:(Rng.create 11) ~program:Corpus.parser ~endpoint:pod_end ()
    in
    Transport.send hive_end
      (Protocol.encode
         (Protocol.Fix_update
            { program_digest = digest; epoch = 1; fixes = [ fix ]; canary = [ 3 ];
              canary_mils = 500; pressure = 0 }));
    Transport.send hive_end (guidance_frame ());
    Sim.run sim;
    Pod.start pod;
    Sim.run ~until:10.0 sim;
    Pod.metrics pod
  in
  let exposed = run exposed_cohort in
  let control = run control_cohort in
  checkb "cohort member suppresses the crash" true (exposed.Pod.averted_crashes >= 1);
  checkb "member marked exposed" true exposed.Pod.canary_exposed;
  checki "control runs without the fix" 0 control.Pod.averted_crashes;
  checkb "control hits the bug" true (control.Pod.guided_failures >= 1);
  checkb "control not exposed" false control.Pod.canary_exposed

(* ---- Corpus-derived wrong fixes ----------------------------------------- *)

let test_corpus_wrong_fix_ingredients () =
  let insts = List.map (fun f -> f.Corpus_bench.generate 1) Corpus_bench.families in
  (* Decoy sites never overlap the ground truth. *)
  List.iter
    (fun inst ->
      List.iter
        (fun site ->
          checkb
            (Printf.sprintf "%s decoy not a bug site" inst.Corpus_bench.name)
            false
            (List.mem site inst.Corpus_bench.bug_sites))
        (Corpus_bench.decoy_sites inst);
      match Corpus_bench.overbroad_lock_set inst with
      | None -> ()
      | Some locks ->
        checkb "over-broad set differs from ground truth" false
          (locks = inst.Corpus_bench.bug_locks))
    insts;
  (* At least one family yields each wrong-fix shape. *)
  let all = List.concat_map Fixgen.corpus_wrong_fixes insts in
  checkb "some decoy guard" true (List.mem_assoc "decoy-guard" all);
  checkb "some benign serializer" true (List.mem_assoc "benign-serializer" all)

(* ---- Platform: rollout off is invisible --------------------------------- *)

let test_rollout_off_prints_nothing () =
  let config = Scenario.single_program ~seed:42 Corpus.parser in
  let config = { config with Platform.duration = 120.0; sample_interval = 30.0 } in
  let report = Platform.run config in
  let f = report.Platform.final in
  checki "no canaries" 0 f.Metrics.canary_fixes;
  checki "no promotions" 0 f.Metrics.fix_promotions;
  checki "no retractions" 0 f.Metrics.fix_retractions;
  checki "no quarantines" 0 f.Metrics.quarantined_fix_traces;
  checki "no exposure" 0 f.Metrics.pods_exposed;
  let rendered = Format.asprintf "%a" Platform.pp_report report in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "no rollout line" false (contains "rollout:" rendered);
  checkb "no canary column" false (contains "canary=" rendered)

let test_rollout_on_stages_fixes () =
  let config =
    Scenario.with_rollout
      ~rollout:{ Fix_lifecycle.default_config with Fix_lifecycle.canary_mils = 250 }
      (Scenario.single_program ~seed:42 Corpus.parser)
  in
  let config = { config with Platform.duration = 600.0; sample_interval = 150.0 } in
  let report = Platform.run config in
  let f = report.Platform.final in
  (* The parser's assertion fix goes through the canary pipeline and,
     being genuinely good, comes out promoted. *)
  checkb "fixes deployed" true (f.Metrics.fixes_deployed > 0);
  checkb "promotion happened" true (f.Metrics.fix_promotions > 0);
  checki "nothing retracted" 0 f.Metrics.fix_retractions;
  checkb "some pod was exposed" true (f.Metrics.pods_exposed >= 1);
  checkb "exposure bounded by fleet" true (f.Metrics.pods_exposed <= config.Platform.n_pods)

let () =
  Alcotest.run "softborg_rollout"
    [
      ( "cohort",
        [
          Alcotest.test_case "deterministic" `Quick test_cohort_deterministic;
          Alcotest.test_case "fraction" `Quick test_cohort_fraction;
          Alcotest.test_case "extremes" `Quick test_cohort_extremes;
        ] );
      ( "health test",
        [
          Alcotest.test_case "holds below minimum" `Quick test_decide_holds_below_minimum;
          Alcotest.test_case "harm retracts" `Quick test_decide_retracts_on_harm;
          Alcotest.test_case "novel bucket retracts" `Quick test_decide_retracts_on_novel_bucket;
          Alcotest.test_case "misfire needs clean control" `Quick
            test_decide_misfire_needs_clean_control;
          Alcotest.test_case "promotes" `Quick test_decide_promotes;
          Alcotest.test_case "codec round trip" `Quick test_entries_roundtrip;
        ] );
      ( "knowledge",
        [
          Alcotest.test_case "stage, retract, quarantine" `Quick test_knowledge_stages_and_retracts;
          Alcotest.test_case "healthy canary promotes" `Quick test_knowledge_promotes_healthy_canary;
          Alcotest.test_case "adoption monotonic" `Quick test_adopt_fixes_is_monotonic;
        ] );
      ( "pod",
        [
          Alcotest.test_case "adversarial replay" `Quick
            test_pod_epoch_guard_survives_adversarial_replay;
          Alcotest.test_case "canary membership" `Quick test_pod_canary_membership;
        ] );
      ( "corpus",
        [ Alcotest.test_case "wrong-fix ingredients" `Quick test_corpus_wrong_fix_ingredients ] );
      ( "platform",
        [
          Alcotest.test_case "off is invisible" `Quick test_rollout_off_prints_nothing;
          Alcotest.test_case "on stages fixes" `Slow test_rollout_on_stages_fixes;
        ] );
    ]
