(* Tests for the program IR, builder, corpus, and generator. *)

module Ir = Softborg_prog.Ir
module Build = Softborg_prog.Build
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Rng = Softborg_util.Rng
module Bytecode = Softborg_exec.Bytecode

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let is_valid prog = match Ir.validate prog with Ok () -> true | Error _ -> false

(* ---- Builder ------------------------------------------------------ *)

let test_compile_straight_line () =
  let open Build in
  let body = compile_thread [ assign (lvar "x") (const 1); assign (lvar "y") (const 2) ] in
  checki "two assigns + halt" 3 (Array.length body);
  checkb "trailing halt" true (body.(2) = Ir.Halt)

let test_compile_if_targets () =
  let open Build in
  let open Build.Infix in
  let body =
    compile_thread [ if_ (const 1 >: const 0) [ assign (lvar "t") (const 1) ] [ assign (lvar "e") (const 2) ] ]
  in
  (* Layout: 0 branch, 1 then-assign, 2 jump, 3 else-assign, 4 halt. *)
  (match body.(0) with
  | Ir.Branch { if_true; if_false; _ } ->
    checki "then target" 1 if_true;
    checki "else target" 3 if_false
  | _ -> Alcotest.fail "expected branch at 0");
  match body.(2) with
  | Ir.Jump target -> checki "join target" 4 target
  | _ -> Alcotest.fail "expected jump at 2"

let test_compile_while_targets () =
  let open Build in
  let open Build.Infix in
  let body = compile_thread [ while_ (local "i" >: const 0) [ assign (lvar "i") (local "i" -: const 1) ] ] in
  (* Layout: 0 branch, 1 body-assign, 2 jump back to 0, 3 halt. *)
  (match body.(0) with
  | Ir.Branch { if_true; if_false; _ } ->
    checki "loop body" 1 if_true;
    checki "loop exit" 3 if_false
  | _ -> Alcotest.fail "expected branch at 0");
  match body.(2) with
  | Ir.Jump 0 -> ()
  | _ -> Alcotest.fail "expected back jump at 2"

let test_nested_if_compiles_validly () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"nested" ~n_inputs:2
      [
        [
          if_
            (input 0 <: const 5)
            [ if_ (input 1 <: const 3) [ assign (lvar "a") (const 1) ] [ assign (lvar "a") (const 2) ] ]
            [ while_ (local "a" <: const 3) [ assign (lvar "a") (local "a" +: const 1) ] ];
        ];
      ]
  in
  checkb "valid" true (is_valid prog)

let test_program_rejects_bad_global () =
  let open Build in
  Alcotest.check_raises "undeclared global"
    (Invalid_argument "Build.program bad: t0:0: undeclared global nope") (fun () ->
      ignore (program ~name:"bad" [ [ assign (gvar "nope") (const 1) ] ]))

let test_program_rejects_bad_input () =
  let open Build in
  checkb "bad input rejected" true
    (try
       ignore (program ~name:"bad-input" ~n_inputs:1 [ [ assign (lvar "x") (input 3) ] ]);
       false
     with Invalid_argument _ -> true)

let test_program_rejects_bad_lock () =
  let open Build in
  checkb "bad lock rejected" true
    (try
       ignore (program ~name:"bad-lock" ~n_locks:1 [ [ lock 2 ] ]);
       false
     with Invalid_argument _ -> true)

(* ---- IR static info ----------------------------------------------- *)

let test_fig2_shape () =
  let prog = Corpus.fig2_write in
  checkb "valid" true (is_valid prog);
  checki "single thread" 1 (Array.length prog.Ir.threads);
  (* Fig. 2 has three branch sites: p<MAX, p>0, p>3. *)
  checki "three branch sites" 3 (List.length (Ir.branch_sites prog))

let test_corpus_all_valid () =
  List.iter
    (fun (name, prog) -> checkb (name ^ " valid") true (is_valid prog))
    Corpus.all

let test_digest_distinguishes_programs () =
  let digests = List.map (fun (_, p) -> Ir.digest p) Corpus.all in
  checki "all digests distinct" (List.length digests)
    (List.length (List.sort_uniq String.compare digests))

let test_digest_stable () =
  Alcotest.check Alcotest.string "same program same digest" (Ir.digest Corpus.parser)
    (Ir.digest Corpus.parser)

(* Rebuild a program from scratch — fresh strings, fresh arrays, no
   value sharing with the original.  The digest must be structural:
   sharing-sensitive hashing (e.g. Marshal) would tell these apart. *)
let rebuild_program (p : Ir.t) : Ir.t =
  let s x = String.init (String.length x) (String.get x) in
  let var = function Ir.Global g -> Ir.Global (s g) | Ir.Local l -> Ir.Local (s l) in
  let rec expr = function
    | Ir.Const c -> Ir.Const c
    | Ir.Var v -> Ir.Var (var v)
    | Ir.Input i -> Ir.Input i
    | Ir.Unop (op, e) -> Ir.Unop (op, expr e)
    | Ir.Binop (op, a, b) -> Ir.Binop (op, expr a, expr b)
  in
  let instr = function
    | Ir.Assign (v, e) -> Ir.Assign (var v, expr e)
    | Ir.Branch { cond; if_true; if_false } -> Ir.Branch { cond = expr cond; if_true; if_false }
    | Ir.Jump t -> Ir.Jump t
    | Ir.Syscall { kind; dst } -> Ir.Syscall { kind; dst = var dst }
    | Ir.Lock l -> Ir.Lock l
    | Ir.Unlock l -> Ir.Unlock l
    | Ir.Assert { cond; message } -> Ir.Assert { cond = expr cond; message = s message }
    | Ir.Yield -> Ir.Yield
    | Ir.Halt -> Ir.Halt
  in
  {
    Ir.name = s p.Ir.name;
    globals = List.map s p.Ir.globals;
    n_inputs = p.Ir.n_inputs;
    n_locks = p.Ir.n_locks;
    threads = Array.map (Array.map instr) p.Ir.threads;
  }

let test_digest_rebuild_stable () =
  List.iter
    (fun (name, prog) ->
      Alcotest.check Alcotest.string (name ^ " rebuilt digest") (Ir.digest prog)
        (Ir.digest (rebuild_program prog)))
    Corpus.all;
  for seed = 1 to 50 do
    let prog, _ = Generator.generate (Rng.create seed) Generator.default_params in
    Alcotest.check Alcotest.string
      (Printf.sprintf "generated %d rebuilt digest" seed)
      (Ir.digest prog)
      (Ir.digest (rebuild_program prog))
  done

let program_structurally_equal (a : Ir.t) (b : Ir.t) =
  a.Ir.name = b.Ir.name && a.Ir.globals = b.Ir.globals && a.Ir.n_inputs = b.Ir.n_inputs
  && a.Ir.n_locks = b.Ir.n_locks && a.Ir.threads = b.Ir.threads

(* 1000 generator programs through one compile cache: every compiled
   value must be keyed by its own program's digest, and a repeated
   digest may only ever come from a structurally identical program —
   the cache never conflates distinct programs. *)
let prop_compile_cache_never_conflates =
  let cache = Bytecode.create_cache () in
  let by_digest : (string, Ir.t) Hashtbl.t = Hashtbl.create 2048 in
  let case = ref 0 in
  QCheck.Test.make ~name:"compile cache never conflates generator programs (1000 cases)"
    ~count:1000 QCheck.small_nat (fun salt ->
      incr case;
      let seed = !case + (salt mod 7) in
      let bugs =
        match seed mod 4 with
        | 0 -> []
        | 1 -> [ Generator.Rare_assert; Generator.Div_by_zero ]
        | 2 -> [ Generator.Deadlock_pair ]
        | _ -> [ Generator.Atomicity_race; Generator.Unchecked_syscall ]
      in
      let prog, _ =
        Generator.generate (Rng.create seed) { Generator.default_params with Generator.bugs }
      in
      let compiled = Bytecode.find_or_compile cache prog in
      let digest = Ir.digest prog in
      let keyed_correctly = compiled.Bytecode.source_digest = digest in
      let no_conflation =
        match Hashtbl.find_opt by_digest digest with
        | Some prior -> program_structurally_equal prior prog
        | None ->
          Hashtbl.add by_digest digest prog;
          true
      in
      (keyed_correctly && no_conflation)
      || QCheck.Test.fail_reportf "seed %d: keyed=%b conflated=%b" seed keyed_correctly
           (not no_conflation))

let test_lock_sites () =
  let sites = Ir.lock_sites Corpus.worker_pool in
  checki "two lock acquisitions per worker" 4 (List.length sites)

let test_instr_count_positive () =
  List.iter
    (fun (name, prog) -> checkb (name ^ " nonempty") true (Ir.instr_count prog > 0))
    Corpus.all

(* ---- Generator ----------------------------------------------------- *)

let gen_params bugs =
  { Generator.default_params with Generator.bugs; n_inputs = 4 }

let test_generator_validity_all_bug_kinds () =
  List.iter
    (fun kind ->
      let rng = Rng.create 1234 in
      let prog, planted = Generator.generate rng (gen_params [ kind ]) in
      checkb (Generator.bug_kind_name kind ^ " valid") true (is_valid prog);
      checki (Generator.bug_kind_name kind ^ " planted") 1 (List.length planted))
    Generator.all_bug_kinds

let test_generator_deadlock_adds_threads () =
  let rng = Rng.create 99 in
  let prog, _ = Generator.generate rng (gen_params [ Generator.Deadlock_pair ]) in
  checki "three threads" 3 (Array.length prog.Ir.threads);
  checki "two locks" 2 prog.Ir.n_locks

let test_generator_race_adds_threads () =
  let rng = Rng.create 100 in
  let prog, _ = Generator.generate rng (gen_params [ Generator.Atomicity_race ]) in
  checki "four threads" 4 (Array.length prog.Ir.threads)

let test_generator_deterministic () =
  let p1, _ = Generator.generate (Rng.create 7) (gen_params [ Generator.Rare_assert ]) in
  let p2, _ = Generator.generate (Rng.create 7) (gen_params [ Generator.Rare_assert ]) in
  Alcotest.check Alcotest.string "same seed same program" (Ir.digest p1) (Ir.digest p2)

let test_generator_multiple_bugs () =
  let rng = Rng.create 55 in
  let prog, planted =
    Generator.generate rng (gen_params [ Generator.Rare_assert; Generator.Div_by_zero; Generator.Deadlock_pair ])
  in
  checkb "valid" true (is_valid prog);
  checki "three planted" 3 (List.length planted)

let prop_generator_always_valid =
  QCheck.Test.make ~name:"generated programs validate" ~count:150 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n_bugs = seed mod 3 in
      let bugs = List.filteri (fun i _ -> i < n_bugs) Generator.all_bug_kinds in
      let prog, _ = Generator.generate rng { Generator.default_params with Generator.bugs } in
      is_valid prog)

let prop_generator_branch_sites_exist =
  QCheck.Test.make ~name:"generated programs have branches" ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 1000) in
      let prog, _ = Generator.generate rng Generator.default_params in
      List.length (Ir.branch_sites prog) > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_prog"
    [
      ( "builder",
        [
          Alcotest.test_case "straight line" `Quick test_compile_straight_line;
          Alcotest.test_case "if targets" `Quick test_compile_if_targets;
          Alcotest.test_case "while targets" `Quick test_compile_while_targets;
          Alcotest.test_case "nested constructs" `Quick test_nested_if_compiles_validly;
          Alcotest.test_case "rejects bad global" `Quick test_program_rejects_bad_global;
          Alcotest.test_case "rejects bad input" `Quick test_program_rejects_bad_input;
          Alcotest.test_case "rejects bad lock" `Quick test_program_rejects_bad_lock;
        ] );
      ( "ir",
        [
          Alcotest.test_case "fig2 shape" `Quick test_fig2_shape;
          Alcotest.test_case "corpus valid" `Quick test_corpus_all_valid;
          Alcotest.test_case "digests distinct" `Quick test_digest_distinguishes_programs;
          Alcotest.test_case "digest stable" `Quick test_digest_stable;
          Alcotest.test_case "digest rebuild stable" `Quick test_digest_rebuild_stable;
          q prop_compile_cache_never_conflates;
          Alcotest.test_case "lock sites" `Quick test_lock_sites;
          Alcotest.test_case "instr counts" `Quick test_instr_count_positive;
        ] );
      ( "generator",
        [
          Alcotest.test_case "all bug kinds valid" `Quick test_generator_validity_all_bug_kinds;
          Alcotest.test_case "deadlock threads" `Quick test_generator_deadlock_adds_threads;
          Alcotest.test_case "race threads" `Quick test_generator_race_adds_threads;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "multiple bugs" `Quick test_generator_multiple_bugs;
          q prop_generator_always_valid;
          q prop_generator_branch_sites_exist;
        ] );
    ]
