(* Bytecode VM ≡ tree-walk interpreter: the VM must be a drop-in
   engine, so every observable by-product — outcome, branch bits,
   decisions, schedule, syscall summaries, lock events, counters — must
   be identical in both record and replay mode, hooks included. *)

module Ir = Softborg_prog.Ir
module Build = Softborg_prog.Build
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Rng = Softborg_util.Rng
module Bitvec = Softborg_util.Bitvec
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Vm = Softborg_exec.Vm
module Bytecode = Softborg_exec.Bytecode
module Engine = Softborg_exec.Engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ---- Result comparison -------------------------------------------- *)

let outcome_str o = Format.asprintf "%a" Softborg_exec.Outcome.pp o

let result_equal (a : Interp.result) (b : Interp.result) =
  a.Interp.outcome = b.Interp.outcome
  && Bitvec.equal a.Interp.bits b.Interp.bits
  && a.Interp.full_path = b.Interp.full_path
  && a.Interp.schedule = b.Interp.schedule
  && a.Interp.syscalls = b.Interp.syscalls
  && a.Interp.lock_events = b.Interp.lock_events
  && a.Interp.steps = b.Interp.steps
  && a.Interp.deferred_acquisitions = b.Interp.deferred_acquisitions
  && a.Interp.suppressed_crashes = b.Interp.suppressed_crashes

let explain_mismatch (tree : Interp.result) (vm : Interp.result) =
  let b field = Printf.sprintf "%s differ" field in
  if tree.Interp.outcome <> vm.Interp.outcome then
    Printf.sprintf "outcome: tree=%s vm=%s" (outcome_str tree.Interp.outcome)
      (outcome_str vm.Interp.outcome)
  else if not (Bitvec.equal tree.Interp.bits vm.Interp.bits) then b "bits"
  else if tree.Interp.full_path <> vm.Interp.full_path then b "full_path"
  else if tree.Interp.schedule <> vm.Interp.schedule then b "schedule"
  else if tree.Interp.syscalls <> vm.Interp.syscalls then b "syscalls"
  else if tree.Interp.lock_events <> vm.Interp.lock_events then b "lock_events"
  else if tree.Interp.steps <> vm.Interp.steps then
    Printf.sprintf "steps: tree=%d vm=%d" tree.Interp.steps vm.Interp.steps
  else if tree.Interp.deferred_acquisitions <> vm.Interp.deferred_acquisitions then b "deferred"
  else if tree.Interp.suppressed_crashes <> vm.Interp.suppressed_crashes then b "suppressed"
  else "equal"

(* Run both engines from identical (inputs, seed, fault plan, policy).
   Policies carry mutable RNG state, so each engine gets a fresh one
   built by [make_sched]. *)
let run_both ?max_steps ?tree_hooks ?vm_hooks ~program ~make_env ~make_sched () =
  let tree = Interp.run ?max_steps ?hooks:tree_hooks ~program ~env:(make_env ()) ~sched:(make_sched ()) () in
  let vm = Vm.execute ?max_steps ?hooks:vm_hooks ~program ~env:(make_env ()) ~sched:(make_sched ()) () in
  (tree, vm)

let gen_program pseed =
  let bugs =
    match pseed mod 4 with
    | 0 -> []
    | 1 -> [ Generator.Rare_assert; Generator.Div_by_zero ]
    | 2 -> [ Generator.Deadlock_pair ]
    | _ -> [ Generator.Atomicity_race; Generator.Unchecked_syscall ]
  in
  fst (Generator.generate (Rng.create (pseed + 1)) { Generator.default_params with Generator.bugs })

let gen_env prog iseed () =
  let input_rng = Rng.create (iseed + 10_000) in
  let inputs = Array.init prog.Ir.n_inputs (fun _ -> Rng.int_in input_rng (-100) 500) in
  let fault_plan = if iseed mod 3 = 0 then Env.Random_faults 0.2 else Env.No_faults in
  Env.make ~fault_plan ~seed:(iseed + 5) ~inputs ()

(* ---- Corpus unit tests -------------------------------------------- *)

let test_corpus_equivalence () =
  List.iter
    (fun (name, prog) ->
      for iseed = 0 to 5 do
        let tree, vm =
          run_both ~program:prog ~make_env:(gen_env prog iseed)
            ~make_sched:(fun () -> Sched.Random_sched (Rng.create (iseed + 3)))
            ()
        in
        checks (Printf.sprintf "%s seed %d" name iseed) "equal" (explain_mismatch tree vm)
      done)
    Corpus.all

let test_round_robin_equivalence () =
  List.iter
    (fun (name, prog) ->
      let tree, vm =
        run_both ~program:prog ~make_env:(gen_env prog 1) ~make_sched:(fun () -> Sched.Round_robin) ()
      in
      checks (name ^ " rr") "equal" (explain_mismatch tree vm))
    Corpus.all

(* Constant folding must not change observable semantics: folded
   branches still record decisions, constant-false asserts still crash
   through the hook, and division by a constant zero still crashes at
   runtime. *)
let test_folded_program_equivalence () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"folded" ~globals:[ "g" ] ~n_inputs:1
      [
        [
          if_ (const 2 *: const 3 >: const 5)
            [ assign (lvar "x") (const 10 /: const 2) ]
            [ assign (lvar "x") (const 0) ];
          if_ (local "x" +: input 0 >: const 4)
            [ assign (gvar "g") (local "x" %: const 0) ]  (* mod by const 0: dynamic crash *)
            [ assign (gvar "g") (const 1) ];
          assert_ (const 1 ==: const 2) "constant-false assert";
        ];
      ]
  in
  for iseed = 0 to 8 do
    let make_env () = Env.make ~seed:iseed ~inputs:[| iseed - 4 |] () in
    let tree, vm =
      run_both ~program:prog ~make_env ~make_sched:(fun () -> Sched.Round_robin) ()
    in
    checks (Printf.sprintf "folded seed %d" iseed) "equal" (explain_mismatch tree vm)
  done

(* ---- Hook equivalence --------------------------------------------- *)

let defer_hooks () =
  (* Defer the first two lock acquisitions, suppress every crash:
     exercises the deferred/suppressed counters and the suppression
     fallbacks on both engines.  Stateful, so each engine needs its own
     instance. *)
  let deferred = ref 0 in
  {
    Interp.on_lock_request =
      (fun ~thread:_ ~lock:_ ~holding:_ ~owner:_ ->
        if !deferred < 2 then begin
          incr deferred;
          `Defer
        end
        else `Proceed);
    on_crash = (fun ~site:_ ~kind:_ -> `Suppress);
  }

let test_hooks_equivalence () =
  for pseed = 0 to 11 do
    let prog = gen_program pseed in
    let tree, vm =
      run_both ~max_steps:3000 ~tree_hooks:(defer_hooks ()) ~vm_hooks:(defer_hooks ())
        ~program:prog ~make_env:(gen_env prog pseed)
        ~make_sched:(fun () -> Sched.Random_sched (Rng.create (pseed + 77)))
        ()
    in
    checks (Printf.sprintf "hooks pseed %d" pseed) "equal" (explain_mismatch tree vm)
  done

(* ---- Record-mode property over the generator corpus --------------- *)

let prop_vm_equals_tree_record =
  QCheck.Test.make ~name:"vm = tree-walk (record mode, random programs)" ~count:150
    QCheck.(triple small_nat small_nat small_nat)
    (fun (pseed, iseed, sseed) ->
      let prog = gen_program pseed in
      let tree, vm =
        run_both ~max_steps:3000 ~program:prog ~make_env:(gen_env prog iseed)
          ~make_sched:(fun () -> Sched.Random_sched (Rng.create (sseed + 77)))
          ()
      in
      result_equal tree vm || QCheck.Test.fail_reportf "mismatch: %s" (explain_mismatch tree vm))

(* ---- Replay parity ------------------------------------------------ *)

let reconstruction_equal (a : Interp.reconstruction) (b : Interp.reconstruction) =
  a.Interp.decisions = b.Interp.decisions && a.Interp.locks = b.Interp.locks

let prop_vm_replay_parity =
  QCheck.Test.make ~name:"vm reconstruct = tree reconstruct (incl. cross-engine)" ~count:120
    QCheck.(triple small_nat small_nat small_nat)
    (fun (pseed, iseed, sseed) ->
      let prog = gen_program pseed in
      let r =
        Interp.run ~max_steps:3000 ~program:prog ~env:(gen_env prog iseed ())
          ~sched:(Sched.Random_sched (Rng.create (sseed + 77)))
          ()
      in
      let reconstruct f =
        f ~program:prog ~bits:r.Interp.bits ~schedule:r.Interp.schedule
          ~total_decisions:(List.length r.Interp.full_path) ~total_steps:r.Interp.steps ()
      in
      match (reconstruct (Interp.reconstruct ?hooks:None), reconstruct (Vm.reconstruct ?hooks:None ?cache:None)) with
      | Ok t, Ok v ->
        (reconstruction_equal t v
        && t.Interp.decisions = r.Interp.full_path
        && v.Interp.locks = r.Interp.lock_events)
        || QCheck.Test.fail_reportf "replay divergence"
      | Error te, Error ve ->
        te = ve || QCheck.Test.fail_reportf "different errors: tree=%s vm=%s" te ve
      | Ok _, Error e -> QCheck.Test.fail_reportf "tree ok, vm error: %s" e
      | Error e, Ok _ -> QCheck.Test.fail_reportf "vm ok, tree error: %s" e)

let prop_vm_replay_error_parity =
  QCheck.Test.make ~name:"truncated/exhausted bit vectors fail identically" ~count:120
    QCheck.(triple small_nat small_nat small_nat)
    (fun (pseed, iseed, sseed) ->
      let prog = gen_program pseed in
      let r =
        Interp.run ~max_steps:3000 ~program:prog ~env:(gen_env prog iseed ())
          ~sched:(Sched.Random_sched (Rng.create (sseed + 177)))
          ()
      in
      let mutate_bits =
        (* Truncate when possible, otherwise claim one decision too
           many: both corruptions must fail (or pass) identically. *)
        let n = Bitvec.length r.Interp.bits in
        if n > 0 then begin
          let bits = Bitvec.copy r.Interp.bits in
          Bitvec.truncate bits (n - 1);
          bits
        end
        else r.Interp.bits
      in
      let total_decisions = List.length r.Interp.full_path + if Bitvec.length r.Interp.bits = 0 then 1 else 0 in
      let reconstruct f =
        f ~program:prog ~bits:mutate_bits ~schedule:r.Interp.schedule ~total_decisions
          ~total_steps:r.Interp.steps ()
      in
      match (reconstruct (Interp.reconstruct ?hooks:None), reconstruct (Vm.reconstruct ?hooks:None ?cache:None)) with
      | Ok t, Ok v -> reconstruction_equal t v
      | Error te, Error ve ->
        te = ve || QCheck.Test.fail_reportf "different errors: tree=%s vm=%s" te ve
      | Ok _, Error e -> QCheck.Test.fail_reportf "tree ok, vm error: %s" e
      | Error e, Ok _ -> QCheck.Test.fail_reportf "vm ok, tree error: %s" e)

(* ---- Compile cache ------------------------------------------------ *)

let test_cache_memoizes () =
  let cache = Bytecode.create_cache () in
  let prog = Corpus.parser in
  let c1 = Bytecode.find_or_compile cache prog in
  let c2 = Bytecode.find_or_compile cache prog in
  checkb "physically shared" true (c1 == c2);
  let stats = Bytecode.cache_stats cache in
  checki "one miss" 1 stats.Bytecode.misses;
  checki "fast hit" 1 stats.Bytecode.fast_hits;
  checki "one entry" 1 stats.Bytecode.entries;
  (* A structurally equal rebuild digests the same, so it shares the
     compiled value through the digest path. *)
  let rebuilt = { prog with Ir.name = prog.Ir.name } in
  let c3 = Bytecode.find_or_compile cache rebuilt in
  checkb "digest hit shares" true (c1 == c3);
  checki "still one entry" 1 (Bytecode.cache_stats cache).Bytecode.entries

let test_cache_distinguishes_corpus () =
  let cache = Bytecode.create_cache ~fast_slots:2 () in
  let compiled = List.map (fun (_, p) -> (p, Bytecode.find_or_compile cache p)) Corpus.all in
  checki "entry per program" (List.length Corpus.all) (Bytecode.cache_stats cache).Bytecode.entries;
  List.iter
    (fun (p, c) ->
      checks "digest key" (Ir.digest p) c.Bytecode.source_digest;
      checkb "stable on relookup" true (Bytecode.find_or_compile cache p == c))
    compiled

(* ---- Engine selection --------------------------------------------- *)

let test_engine_round_trip () =
  checks "vm" "vm" (Engine.to_string Engine.Vm);
  checks "tree" "tree" (Engine.to_string Engine.Tree);
  checkb "parse vm" true (Engine.of_string "vm" = Some Engine.Vm);
  checkb "parse tree" true (Engine.of_string "tree" = Some Engine.Tree);
  checkb "reject junk" true (Engine.of_string "jit" = None)

let test_engine_dispatch_equal () =
  let prog = Corpus.fig2_write in
  let make_env () = Env.make ~seed:3 ~inputs:(Array.make prog.Ir.n_inputs 7) () in
  let run engine = Engine.run ~engine ~program:prog ~env:(make_env ()) ~sched:Sched.Round_robin () in
  checks "engines agree" "equal" (explain_mismatch (run Engine.Tree) (run Engine.Vm))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_vm"
    [
      ( "equivalence",
        [
          Alcotest.test_case "corpus random scheds" `Quick test_corpus_equivalence;
          Alcotest.test_case "corpus round robin" `Quick test_round_robin_equivalence;
          Alcotest.test_case "constant folding" `Quick test_folded_program_equivalence;
          Alcotest.test_case "hooks" `Quick test_hooks_equivalence;
          q prop_vm_equals_tree_record;
        ] );
      ( "replay",
        [
          q prop_vm_replay_parity;
          q prop_vm_replay_error_parity;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memoizes" `Quick test_cache_memoizes;
          Alcotest.test_case "distinguishes corpus" `Quick test_cache_distinguishes_corpus;
        ] );
      ( "engine",
        [
          Alcotest.test_case "string round trip" `Quick test_engine_round_trip;
          Alcotest.test_case "dispatch equal" `Quick test_engine_dispatch_equal;
        ] );
    ]
