(* Tests for the pod: workload models, user-feedback inference, and the
   pod agent itself (capture, upload, fix application, guidance). *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Outcome = Softborg_exec.Outcome
module Anonymize = Softborg_trace.Anonymize
module Wire = Softborg_trace.Wire
module Trace = Softborg_trace.Trace
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Protocol = Softborg_hive.Protocol
module Fixgen = Softborg_hive.Fixgen
module Guidance = Softborg_hive.Guidance
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Feedback = Softborg_pod.Feedback
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---- Workload --------------------------------------------------------- *)

let test_workload_uniform_in_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 500 do
    let inputs =
      Workload.draw rng (Workload.Uniform_inputs { lo = -5; hi = 5 }) ~n_inputs:3
    in
    Array.iter (fun v -> checkb "in range" true (v >= -5 && v <= 5)) inputs
  done

let test_workload_zipf_skewed () =
  let rng = Rng.create 2 in
  let low = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    let inputs =
      Workload.draw rng (Workload.Zipf_inputs { lo = 0; hi = 99; exponent = 1.2 }) ~n_inputs:1
    in
    if inputs.(0) < 10 then incr low
  done;
  checkb "head dominates" true (!low > n / 2)

let test_workload_sizes () =
  let rng = Rng.create 3 in
  checki "n_inputs respected" 5 (Array.length (Workload.draw rng Workload.default ~n_inputs:5));
  checki "zero inputs" 0 (Array.length (Workload.draw rng Workload.default ~n_inputs:0))

(* ---- Feedback ----------------------------------------------------------- *)

let test_feedback_signals () =
  let crash =
    Outcome.Crash
      { site = { Ir.thread = 0; pc = 1 }; kind = Outcome.Assertion_failure; message = "m" }
  in
  checkb "crash reports directly" true
    (Feedback.signal_of_run ~outcome:crash ~steps:10 ~slow_threshold:100 = Feedback.Crash_report);
  checkb "hang is user-killed" true
    (Feedback.signal_of_run ~outcome:Outcome.Hang ~steps:10 ~slow_threshold:100
    = Feedback.Forceful_termination);
  checkb "slow success frustrates" true
    (Feedback.signal_of_run ~outcome:Outcome.Success ~steps:500 ~slow_threshold:100
    = Feedback.Jerky_mouse);
  checkb "fast success is silent" true
    (Feedback.signal_of_run ~outcome:Outcome.Success ~steps:50 ~slow_threshold:100
    = Feedback.Normal_exit)

let test_feedback_labels () =
  let deadlock = Outcome.Deadlock { waiting = [ (0, 1); (1, 0) ] } in
  checkb "detected deadlock keeps its label" true
    (Feedback.label_of_signal Feedback.Forceful_termination ~outcome:deadlock = deadlock);
  checkb "killed hang labels as hang" true
    (Feedback.label_of_signal Feedback.Forceful_termination ~outcome:Outcome.Hang
    = Outcome.Hang)

(* ---- Pod ------------------------------------------------------------------ *)

let make_pod ?(config = Pod.default_config) ?(program = Corpus.parser) () =
  let sim = Sim.create () in
  let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 7) () in
  let received = ref [] in
  Transport.on_receive hive_end (fun payload -> received := payload :: !received);
  let pod = Pod.create ~config ~sim ~rng:(Rng.create 11) ~program ~endpoint:pod_end () in
  (sim, pod, hive_end, received)

let test_pod_session_uploads_trace () =
  let sim, pod, _, received = make_pod () in
  Pod.run_session pod;
  Sim.run sim;
  checki "one upload" 1 (List.length !received);
  match Protocol.decode (List.hd !received) with
  | Ok (Protocol.Trace_upload payload) -> (
    match Wire.decode payload with
    | Ok trace ->
      Alcotest.(check string) "right program" (Ir.digest Corpus.parser) trace.Trace.program_digest
    | Error _ -> Alcotest.fail "bad trace payload")
  | _ -> Alcotest.fail "expected a trace upload"

let test_pod_outcome_only_mode_strips () =
  let config = { Pod.default_config with Pod.upload = Pod.Outcomes_only } in
  let sim, pod, _, received = make_pod ~config () in
  Pod.run_session pod;
  Sim.run sim;
  match Protocol.decode (List.hd !received) with
  | Ok (Protocol.Trace_upload payload) -> (
    match Wire.decode payload with
    | Ok trace ->
      checki "no bits" 0 (Softborg_util.Bitvec.length trace.Trace.bits);
      checki "no syscalls" 0 (List.length trace.Trace.syscalls)
    | Error _ -> Alcotest.fail "bad trace payload")
  | _ -> Alcotest.fail "expected a trace upload"

let test_pod_sampled_mode_sends_reports () =
  let config = { Pod.default_config with Pod.upload = Pod.Sampled_reports 10 } in
  let sim, pod, _, received = make_pod ~config () in
  Pod.run_session pod;
  Sim.run sim;
  match Protocol.decode (List.hd !received) with
  | Ok (Protocol.Sampled_report { report; _ }) ->
    checki "rate preserved" 10 report.Softborg_trace.Sampling.rate
  | _ -> Alcotest.fail "expected a sampled report"

let test_pod_applies_fix_update () =
  let sim, pod, hive_end, _ = make_pod () in
  let site =
    match (Softborg_exec.Interp.run ~program:Corpus.parser
             ~env:(Env.make ~seed:1 ~inputs:Corpus.parser_trigger ())
             ~sched:Softborg_exec.Sched.Round_robin ()).Softborg_exec.Interp.outcome
    with
    | Outcome.Crash { site; _ } -> site
    | _ -> Alcotest.fail "trigger should crash"
  in
  let fix =
    {
      Fixgen.id = 9;
      epoch = 1;
      kind =
        Fixgen.Crash_suppression
          { bucket = "b"; site; crash_kind = Outcome.Assertion_failure };
    }
  in
  Transport.send hive_end
    (Protocol.encode
       (Protocol.Fix_update
          {
            program_digest = Ir.digest Corpus.parser;
            epoch = 1;
            fixes = [ fix ];
            canary = [];
            canary_mils = 0;
            pressure = 0;
          }));
  Sim.run sim;
  checki "pod at epoch 1" 1 (Pod.metrics pod).Pod.fix_epoch;
  (* Older epochs must not roll the pod back. *)
  Transport.send hive_end
    (Protocol.encode
       (Protocol.Fix_update
          {
            program_digest = Ir.digest Corpus.parser;
            epoch = 0;
            fixes = [];
            canary = [];
            canary_mils = 0;
            pressure = 0;
          }));
  Sim.run sim;
  checki "stale update ignored" 1 (Pod.metrics pod).Pod.fix_epoch

let test_pod_guidance_takes_priority () =
  let sim, pod, hive_end, received = make_pod () in
  let directive =
    Guidance.Cover_direction
      {
        site = { Ir.thread = 0; pc = 1 };
        direction = true;
        test =
          {
            Softborg_symexec.Testgen.inputs = Array.copy Corpus.parser_trigger;
            fault_plan = Env.No_faults;
          };
      }
  in
  Transport.send hive_end
    (Protocol.encode
       (Protocol.Guidance_update
          { program_digest = Ir.digest Corpus.parser; directives = [ directive ]; pressure = 0 }));
  Sim.run sim;
  Pod.start pod;
  Sim.run ~until:10.0 sim;
  let m = Pod.metrics pod in
  checkb "guided run executed" true (m.Pod.guided_runs >= 1);
  checkb "guided crash is not a user failure" true (m.Pod.guided_failures >= 1);
  checkb "uploads flowed" true (!received <> [])

let test_pod_fix_averts_failures () =
  (* A pod running the trigger inputs crashes; with a suppression fix
     deployed, the same session is averted. *)
  let config =
    {
      Pod.default_config with
      Pod.workload = Workload.Uniform_inputs { lo = 7; hi = 7 };
      fault_probability = 0.0;
    }
  in
  (* lo=hi=7 gives inputs [|7;7;7|]: tok=7, arg=7 -> no crash.  Use
     guidance-style direct sessions instead: run the trigger via a
     directive, then compare user failures with/without the fix. *)
  ignore config;
  let sim, pod, hive_end, _ = make_pod () in
  let site =
    match (Softborg_exec.Interp.run ~program:Corpus.parser
             ~env:(Env.make ~seed:1 ~inputs:Corpus.parser_trigger ())
             ~sched:Softborg_exec.Sched.Round_robin ()).Softborg_exec.Interp.outcome
    with
    | Outcome.Crash { site; _ } -> site
    | _ -> Alcotest.fail "trigger should crash"
  in
  let fix =
    {
      Fixgen.id = 10;
      epoch = 1;
      kind =
        Fixgen.Crash_suppression
          { bucket = "b"; site; crash_kind = Outcome.Assertion_failure };
    }
  in
  Transport.send hive_end
    (Protocol.encode
       (Protocol.Fix_update
          {
            program_digest = Ir.digest Corpus.parser;
            epoch = 1;
            fixes = [ fix ];
            canary = [];
            canary_mils = 0;
            pressure = 0;
          }));
  Sim.run sim;
  (* Drive the crash inputs through a guidance directive. *)
  Transport.send hive_end
    (Protocol.encode
       (Protocol.Guidance_update
          {
            program_digest = Ir.digest Corpus.parser;
            directives =
              [
                Guidance.Cover_direction
                  {
                    site;
                    direction = true;
                    test =
                      {
                        Softborg_symexec.Testgen.inputs = Array.copy Corpus.parser_trigger;
                        fault_plan = Env.No_faults;
                      };
                  };
              ];
            pressure = 0;
          }));
  Sim.run sim;
  Pod.start pod;
  Sim.run ~until:5.0 sim;
  let m = Pod.metrics pod in
  checkb "crash averted by the fix" true (m.Pod.averted_crashes >= 1);
  checki "no guided failures with fix" 0 m.Pod.guided_failures

let () =
  Alcotest.run "softborg_pod"
    [
      ( "workload",
        [
          Alcotest.test_case "uniform range" `Quick test_workload_uniform_in_range;
          Alcotest.test_case "zipf skew" `Quick test_workload_zipf_skewed;
          Alcotest.test_case "sizes" `Quick test_workload_sizes;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "signals" `Quick test_feedback_signals;
          Alcotest.test_case "labels" `Quick test_feedback_labels;
        ] );
      ( "pod",
        [
          Alcotest.test_case "session uploads" `Quick test_pod_session_uploads_trace;
          Alcotest.test_case "outcome-only mode" `Quick test_pod_outcome_only_mode_strips;
          Alcotest.test_case "sampled mode" `Quick test_pod_sampled_mode_sends_reports;
          Alcotest.test_case "applies fix update" `Quick test_pod_applies_fix_update;
          Alcotest.test_case "guidance priority" `Quick test_pod_guidance_takes_priority;
          Alcotest.test_case "fix averts failures" `Quick test_pod_fix_averts_failures;
        ] );
    ]
