(* Tests for the distribution substrate: discrete-event simulator,
   lossy links, and the reliable transport. *)

module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* ---- Sim ------------------------------------------------------------ *)

let test_sim_fires_in_time_order () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~delay:3.0 (fun () -> order := 3 :: !order);
  Sim.schedule sim ~delay:1.0 (fun () -> order := 1 :: !order);
  Sim.schedule sim ~delay:2.0 (fun () -> order := 2 :: !order);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  checkf "clock at last event" 3.0 (Sim.now sim)

let test_sim_ties_break_by_insertion () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () -> order := "a" :: !order);
  Sim.schedule sim ~delay:1.0 (fun () -> order := "b" :: !order);
  Sim.run sim;
  Alcotest.(check (list string)) "insertion order" [ "a"; "b" ] (List.rev !order)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () ->
      fired := "outer" :: !fired;
      Sim.schedule sim ~delay:1.0 (fun () -> fired := "inner" :: !fired));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !fired);
  checkf "clock" 2.0 (Sim.now sim)

let test_sim_until_limit () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () -> incr fired)
  done;
  Sim.run ~until:5.0 sim;
  checki "only first five" 5 !fired;
  checki "rest pending" 5 (Sim.pending sim)

let test_sim_negative_delay_clamps () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:5.0 (fun () -> ());
  ignore (Sim.step sim);
  let fired = ref false in
  Sim.schedule sim ~delay:(-3.0) (fun () -> fired := true);
  ignore (Sim.step sim);
  checkb "clamped event fired" true !fired;
  checkf "clock unchanged by clamped event" 5.0 (Sim.now sim)

let test_sim_counts () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () -> ());
  Sim.schedule sim ~delay:2.0 (fun () -> ());
  checki "pending" 2 (Sim.pending sim);
  Sim.run sim;
  checki "fired" 2 (Sim.fired sim);
  checki "none pending" 0 (Sim.pending sim)

(* ---- Link ------------------------------------------------------------ *)

let test_link_lossless_delivers_all () =
  let sim = Sim.create () in
  let link =
    Link.create ~config:Link.lan ~sim ~rng:(Rng.create 1) ()
  in
  let received = ref 0 in
  for _ = 1 to 100 do
    Link.send link ~payload:"x" ~deliver:(fun _ -> incr received)
  done;
  Sim.run sim;
  checki "all delivered" 100 !received;
  checki "none dropped" 0 (Link.dropped link)

let test_link_drops_at_configured_rate () =
  let sim = Sim.create () in
  let config = { Link.drop_probability = 0.5; mean_latency = 0.01; min_latency = 0.0 } in
  let link = Link.create ~config ~sim ~rng:(Rng.create 7) () in
  let received = ref 0 in
  for _ = 1 to 1000 do
    Link.send link ~payload:"x" ~deliver:(fun _ -> incr received)
  done;
  Sim.run sim;
  checkb "roughly half dropped" true (!received > 380 && !received < 620);
  checki "accounting consistent" 1000 (Link.dropped link + !received)

let test_link_latency_floor () =
  let sim = Sim.create () in
  let config = { Link.drop_probability = 0.0; mean_latency = 0.05; min_latency = 0.02 } in
  let link = Link.create ~config ~sim ~rng:(Rng.create 3) () in
  let arrival = ref 0.0 in
  Link.send link ~payload:"x" ~deliver:(fun _ -> arrival := Sim.now sim);
  Sim.run sim;
  checkb "at least the floor" true (!arrival >= 0.02)

let test_link_byte_accounting () =
  let sim = Sim.create () in
  let link = Link.create ~config:Link.lan ~sim ~rng:(Rng.create 1) () in
  Link.send link ~payload:"hello" ~deliver:ignore;
  Link.send link ~payload:"yo" ~deliver:ignore;
  checki "bytes counted" 7 (Link.bytes_sent link)

(* ---- Transport --------------------------------------------------------- *)

let pair ?config seed =
  let sim = Sim.create () in
  let a, b = Transport.endpoint_pair ?config ~sim ~rng:(Rng.create seed) () in
  (sim, a, b)

let test_transport_delivers_in_order_content () =
  let sim, a, b = pair 1 in
  let received = ref [] in
  Transport.on_receive b (fun payload -> received := payload :: !received);
  List.iter (Transport.send a) [ "one"; "two"; "three" ];
  Sim.run sim;
  Alcotest.(check (list string))
    "all delivered exactly once"
    (List.sort compare [ "one"; "two"; "three" ])
    (List.sort compare !received);
  checki "no duplicates" 3 (List.length !received)

let test_transport_survives_heavy_loss () =
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 0.4; mean_latency = 0.02; min_latency = 0.001 };
    }
  in
  let sim, a, b = pair ~config 5 in
  let received = ref 0 in
  Transport.on_receive b (fun _ -> incr received);
  for i = 1 to 200 do
    Transport.send a (Printf.sprintf "msg-%d" i)
  done;
  Sim.run sim;
  checki "every message eventually delivered" 200 !received;
  let s = Transport.stats a in
  checkb "retransmissions happened" true (s.Transport.retransmissions > 0)

let test_transport_no_duplicate_delivery () =
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 0.3; mean_latency = 0.05; min_latency = 0.001 };
      Transport.retry_timeout = 0.01;  (* aggressive: force duplicates on the wire *)
    }
  in
  let sim, a, b = pair ~config 9 in
  let received = ref 0 in
  Transport.on_receive b (fun _ -> incr received);
  for _ = 1 to 50 do
    Transport.send a "dup-test"
  done;
  Sim.run sim;
  checki "exactly once to the application" 50 !received;
  let s = Transport.stats b in
  checkb "duplicates were suppressed" true (s.Transport.duplicates_suppressed > 0)

let test_transport_bidirectional () =
  let sim, a, b = pair 11 in
  let at_a = ref 0 and at_b = ref 0 in
  Transport.on_receive a (fun _ -> incr at_a);
  Transport.on_receive b (fun _ -> incr at_b);
  Transport.send a "to-b";
  Transport.send b "to-a";
  Sim.run sim;
  checki "a received" 1 !at_a;
  checki "b received" 1 !at_b

let test_transport_gives_up_eventually () =
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 1.0; mean_latency = 0.01; min_latency = 0.001 };
      Transport.max_retries = 3;
      Transport.retry_timeout = 0.01;
    }
  in
  let sim, a, b = pair ~config 13 in
  Transport.on_receive b (fun _ -> Alcotest.fail "nothing can arrive");
  Transport.send a "doomed";
  Sim.run sim;
  let s = Transport.stats a in
  checki "gave up" 1 s.Transport.gave_up;
  checki "three retries" 3 s.Transport.retransmissions

(* ---- Adversarial link conditions ------------------------------------- *)

let test_transport_survives_duplication () =
  (* A flaky router clones packets: the wire sees each copy, the
     application exactly one. *)
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 0.0; mean_latency = 0.02; min_latency = 0.001 };
    }
  in
  let sim, a, b = pair ~config 17 in
  let link_ab =
    match Transport.out_link a with Some l -> l | None -> Alcotest.fail "endpoint has no link"
  in
  Link.set_duplicate_probability link_ab 0.8;
  let received = ref [] in
  Transport.on_receive b (fun payload -> received := payload :: !received);
  let n = 100 in
  for i = 1 to n do
    Transport.send a (Printf.sprintf "m-%d" i)
  done;
  Sim.run sim;
  checki "exactly once to the application" n (List.length !received);
  checki "no payload repeated" n (List.length (List.sort_uniq compare !received));
  checkb "the wire did duplicate" true (Link.duplicated link_ab > 0);
  let sb = Transport.stats b in
  checkb "duplicates were suppressed" true (sb.Transport.duplicates_suppressed > 0);
  (* Every data copy the link delivered was either handed to the app
     (first arrival) or suppressed (clone or retransmit). *)
  checki "receiver accounts for every wire copy"
    (Link.delivered link_ab)
    (sb.Transport.delivered + sb.Transport.duplicates_suppressed);
  (* Link-level conservation: what went in either dropped or came out,
     plus one extra arrival per clone. *)
  checki "link conservation"
    (Link.sent link_ab - Link.dropped link_ab + Link.duplicated link_ab)
    (Link.delivered link_ab)

let test_transport_survives_reordering () =
  (* High-variance latency with back-to-back sends scrambles arrival
     order; delivery must still be exactly-once and complete. *)
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 0.0; mean_latency = 0.3; min_latency = 0.0 };
      Transport.retry_timeout = 5.0;  (* keep retransmits out of the picture *)
    }
  in
  let sim, a, b = pair ~config 23 in
  let received = ref [] in
  Transport.on_receive b (fun payload -> received := payload :: !received);
  let n = 100 in
  let sent = List.init n (fun i -> Printf.sprintf "m-%02d" i) in
  List.iter (Transport.send a) sent;
  Sim.run sim;
  let received = List.rev !received in
  checkb "arrival order was actually scrambled" true (received <> sent);
  Alcotest.(check (list string)) "but nothing lost or repeated" sent (List.sort compare received);
  let sa = Transport.stats a and sb = Transport.stats b in
  checki "nothing abandoned" 0 sa.Transport.gave_up;
  checki "receiver matches sender" sa.Transport.messages_sent sb.Transport.delivered

let test_transport_adversarial_battery () =
  (* Loss, duplication, and an impatient retry timer all at once, both
     directions.  Exactly-once delivery must hold and every counter must
     reconcile with the sender's. *)
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 0.3; mean_latency = 0.05; min_latency = 0.001 };
      Transport.retry_timeout = 0.02;
      Transport.max_retries = 30;
    }
  in
  let sim, a, b = pair ~config 29 in
  (match (Transport.out_link a, Transport.out_link b) with
  | Some ab, Some ba ->
    Link.set_duplicate_probability ab 0.5;
    Link.set_duplicate_probability ba 0.5
  | _ -> Alcotest.fail "endpoints have no links");
  let received = ref [] in
  Transport.on_receive b (fun payload -> received := payload :: !received);
  let n = 200 in
  for i = 1 to n do
    Transport.send a (Printf.sprintf "m-%d" i)
  done;
  Sim.run sim;
  let sa = Transport.stats a and sb = Transport.stats b in
  checki "exactly-once delivery" (sa.Transport.messages_sent - sa.Transport.gave_up)
    sb.Transport.delivered;
  checki "no payload repeated" (List.length !received)
    (List.length (List.sort_uniq compare !received));
  checkb "the battery actually fired" true
    (sa.Transport.retransmissions > 0 && sb.Transport.duplicates_suppressed > 0);
  let link_ab =
    match Transport.out_link a with Some l -> l | None -> assert false
  in
  checki "receiver accounts for every wire copy"
    (Link.delivered link_ab)
    (sb.Transport.delivered + sb.Transport.duplicates_suppressed);
  checki "link conservation"
    (Link.sent link_ab - Link.dropped link_ab + Link.duplicated link_ab)
    (Link.delivered link_ab)

let prop_transport_reliable_random_configs =
  QCheck.Test.make ~name:"transport delivers everything exactly once" ~count:30
    QCheck.(pair small_nat (int_range 0 35))
    (fun (seed, drop_pct) ->
      let config =
        {
          Transport.default_config with
          Transport.link =
            {
              Link.drop_probability = float_of_int drop_pct /. 100.0;
              mean_latency = 0.02;
              min_latency = 0.001;
            };
          Transport.retry_timeout = 0.05;
        }
      in
      let sim, a, b = pair ~config (seed + 100) in
      let received = ref 0 in
      Transport.on_receive b (fun _ -> incr received);
      let n = 40 in
      for _ = 1 to n do
        Transport.send a "m"
      done;
      Sim.run sim;
      !received = n)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_net"
    [
      ( "sim",
        [
          Alcotest.test_case "time order" `Quick test_sim_fires_in_time_order;
          Alcotest.test_case "tie break" `Quick test_sim_ties_break_by_insertion;
          Alcotest.test_case "nested" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "until" `Quick test_sim_until_limit;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay_clamps;
          Alcotest.test_case "counts" `Quick test_sim_counts;
        ] );
      ( "link",
        [
          Alcotest.test_case "lossless" `Quick test_link_lossless_delivers_all;
          Alcotest.test_case "drop rate" `Quick test_link_drops_at_configured_rate;
          Alcotest.test_case "latency floor" `Quick test_link_latency_floor;
          Alcotest.test_case "byte accounting" `Quick test_link_byte_accounting;
        ] );
      ( "transport",
        [
          Alcotest.test_case "delivers" `Quick test_transport_delivers_in_order_content;
          Alcotest.test_case "heavy loss" `Quick test_transport_survives_heavy_loss;
          Alcotest.test_case "no duplicates" `Quick test_transport_no_duplicate_delivery;
          Alcotest.test_case "bidirectional" `Quick test_transport_bidirectional;
          Alcotest.test_case "gives up" `Quick test_transport_gives_up_eventually;
          Alcotest.test_case "duplication" `Quick test_transport_survives_duplication;
          Alcotest.test_case "reordering" `Quick test_transport_survives_reordering;
          Alcotest.test_case "adversarial battery" `Quick test_transport_adversarial_battery;
          q prop_transport_reliable_random_configs;
        ] );
    ]
