(* Tests for the constraint-solver stack: CNF/Tseitin, DPLL vs brute
   force, WalkSAT soundness, the interval path-condition solver, and
   portfolio racing. *)

module Ir = Softborg_prog.Ir
module Cnf = Softborg_solver.Cnf
module Dpll = Softborg_solver.Dpll
module Walksat = Softborg_solver.Walksat
module Brute = Softborg_solver.Brute
module Path_cond = Softborg_solver.Path_cond
module Interval = Softborg_solver.Interval
module Portfolio = Softborg_solver.Portfolio
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---- CNF ----------------------------------------------------------- *)

let test_cnf_eval () =
  let f = Cnf.make ~n_vars:2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  let a = [| false; false; true |] in
  checkb "satisfied" true (Cnf.eval a f);
  let b = [| false; true; false |] in
  checkb "unsatisfied" false (Cnf.eval b f);
  checki "one unsatisfied clause" 1 (List.length (Cnf.unsatisfied b f))

let test_cnf_rejects_bad_literal () =
  Alcotest.check_raises "literal 0" (Invalid_argument "Cnf.make: literal 0 out of range (n_vars=1)")
    (fun () -> ignore (Cnf.make ~n_vars:1 [ [ 0 ] ]));
  checkb "out of range" true
    (try
       ignore (Cnf.make ~n_vars:1 [ [ 2 ] ]);
       false
     with Invalid_argument _ -> true)

let test_tseitin_equisatisfiable () =
  (* (x1 /\ x2) \/ ~x3 *)
  let e = Cnf.Or [ Cnf.And [ Cnf.Var 1; Cnf.Var 2 ]; Cnf.Not (Cnf.Var 3) ] in
  let f = Cnf.tseitin ~n_vars:3 e in
  (match Brute.solve f with
  | Brute.Sat a ->
    (* Check the model against the original expression. *)
    let v i = a.(i) in
    checkb "model satisfies source expr" true ((v 1 && v 2) || not (v 3))
  | Brute.Unsat -> Alcotest.fail "satisfiable expression became UNSAT");
  (* A contradiction must stay UNSAT. *)
  let contra = Cnf.And [ Cnf.Var 1; Cnf.Not (Cnf.Var 1) ] in
  match Brute.solve (Cnf.tseitin ~n_vars:1 contra) with
  | Brute.Unsat -> ()
  | Brute.Sat _ -> Alcotest.fail "contradiction became SAT"

let test_tseitin_constants () =
  (match Brute.solve (Cnf.tseitin ~n_vars:1 (Cnf.Const true)) with
  | Brute.Sat _ -> ()
  | Brute.Unsat -> Alcotest.fail "true is sat");
  match Brute.solve (Cnf.tseitin ~n_vars:1 (Cnf.Const false)) with
  | Brute.Unsat -> ()
  | Brute.Sat _ -> Alcotest.fail "false is unsat"

(* Random small formulas for oracle comparisons. *)
let random_formula rng ~n_vars ~n_clauses ~clause_len =
  let clause () =
    List.init clause_len (fun _ ->
        let v = 1 + Rng.int rng n_vars in
        if Rng.bool rng then v else -v)
  in
  Cnf.make ~n_vars (List.init n_clauses (fun _ -> clause ()))

(* ---- DPLL ----------------------------------------------------------- *)

let test_dpll_trivial () =
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  (match (Dpll.solve f).Dpll.verdict with
  | Dpll.Sat a -> checkb "x1 true" true a.(1)
  | _ -> Alcotest.fail "expected SAT");
  let g = Cnf.make ~n_vars:1 [ [ 1 ]; [ -1 ] ] in
  match (Dpll.solve g).Dpll.verdict with
  | Dpll.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_dpll_empty_formula () =
  let f = Cnf.make ~n_vars:3 [] in
  match (Dpll.solve f).Dpll.verdict with
  | Dpll.Sat _ -> ()
  | _ -> Alcotest.fail "empty formula is SAT"

let test_dpll_timeout () =
  let rng = Rng.create 5 in
  let f = random_formula rng ~n_vars:30 ~n_clauses:128 ~clause_len:3 in
  match (Dpll.solve ~budget:5 f).Dpll.verdict with
  | Dpll.Timeout -> ()
  | _ -> Alcotest.fail "tiny budget should time out"

let dpll_agrees_with_brute heuristic =
  QCheck.Test.make
    ~name:(Printf.sprintf "dpll agrees with brute force")
    ~count:150 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n_vars = 3 + Rng.int rng 8 in
      let n_clauses = 2 + Rng.int rng 25 in
      let f = random_formula rng ~n_vars ~n_clauses ~clause_len:3 in
      let brute = Brute.solve f in
      match ((Dpll.solve ~heuristic f).Dpll.verdict, brute) with
      | Dpll.Sat a, Brute.Sat _ -> Cnf.eval a f
      | Dpll.Unsat, Brute.Unsat -> true
      | Dpll.Timeout, _ -> QCheck.Test.fail_report "unexpected timeout"
      | Dpll.Sat _, Brute.Unsat | Dpll.Unsat, Brute.Sat _ ->
        QCheck.Test.fail_report "verdict mismatch")

let prop_dpll_maxocc = dpll_agrees_with_brute Dpll.Max_occurrence
let prop_dpll_jw = dpll_agrees_with_brute Dpll.Jeroslow_wang

let prop_dpll_random_branch =
  QCheck.Test.make ~name:"dpll random-branch agrees with brute" ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 2) in
      let f = random_formula rng ~n_vars:8 ~n_clauses:20 ~clause_len:3 in
      let brute = Brute.solve f in
      match
        ((Dpll.solve ~heuristic:(Dpll.Random_branch (Rng.create seed)) f).Dpll.verdict, brute)
      with
      | Dpll.Sat a, Brute.Sat _ -> Cnf.eval a f
      | Dpll.Unsat, Brute.Unsat -> true
      | _ -> false)

(* ---- WalkSAT -------------------------------------------------------- *)

let test_walksat_finds_model () =
  let f = Cnf.make ~n_vars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ -3; 4 ]; [ 2; -4 ] ] in
  match (Walksat.solve ~rng:(Rng.create 3) f).Walksat.verdict with
  | Walksat.Sat a -> checkb "model valid" true (Cnf.eval a f)
  | Walksat.Timeout -> Alcotest.fail "easy instance timed out"

let test_walksat_empty () =
  let f = Cnf.make ~n_vars:0 [] in
  match (Walksat.solve ~rng:(Rng.create 1) f).Walksat.verdict with
  | Walksat.Sat _ -> ()
  | Walksat.Timeout -> Alcotest.fail "empty formula"

let test_walksat_gives_up_on_unsat () =
  let f = Cnf.make ~n_vars:1 [ [ 1 ]; [ -1 ] ] in
  match (Walksat.solve ~budget:10_000 ~rng:(Rng.create 2) f).Walksat.verdict with
  | Walksat.Timeout -> ()
  | Walksat.Sat _ -> Alcotest.fail "found a model of an UNSAT formula"

let prop_walksat_models_valid =
  QCheck.Test.make ~name:"walksat models satisfy the formula" ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 3) in
      let f = random_formula rng ~n_vars:10 ~n_clauses:20 ~clause_len:3 in
      match (Walksat.solve ~budget:200_000 ~rng:(Rng.create seed) f).Walksat.verdict with
      | Walksat.Sat a -> Cnf.eval a f
      | Walksat.Timeout -> true)

(* ---- Path conditions -------------------------------------------------- *)

let atom_lt slot c = Path_cond.atom (Ir.Binop (Ir.Lt, Ir.Input slot, Ir.Const c)) true
let atom_mod_eq slot m r expected =
  Path_cond.atom
    (Ir.Binop (Ir.Eq, Ir.Binop (Ir.Mod, Ir.Input slot, Ir.Const m), Ir.Const r))
    expected

let test_path_cond_eval () =
  let pc = [ atom_lt 0 10; atom_mod_eq 1 4 2 true ] in
  checkb "satisfied" true (Path_cond.satisfied_by pc [| 5; 6 |]);
  checkb "violated first" false (Path_cond.satisfied_by pc [| 15; 6 |]);
  checkb "violated second" false (Path_cond.satisfied_by pc [| 5; 7 |])

let test_path_cond_metadata () =
  let pc = [ atom_lt 0 10; atom_mod_eq 2 64 13 true ] in
  Alcotest.(check (list int)) "inputs" [ 0; 2 ] (Path_cond.inputs_used pc);
  checkb "64 among moduli" true (List.mem 64 (Path_cond.moduli pc));
  checkb "13 among constants" true (List.mem 13 (Path_cond.constants pc));
  checkb "well formed" true (Path_cond.well_formed pc);
  checkb "var not well formed" false
    (Path_cond.well_formed [ Path_cond.atom (Ir.Var (Ir.Local "x")) true ])

let test_path_cond_div_zero_traps () =
  let pc = [ Path_cond.atom (Ir.Binop (Ir.Div, Ir.Const 10, Ir.Input 0)) true ] in
  checkb "div by zero fails the atom" false (Path_cond.satisfied_by pc [| 0 |]);
  checkb "nonzero ok" true (Path_cond.satisfied_by pc [| 2 |])

(* ---- Interval solver --------------------------------------------------- *)

let solve ?budget pc ~n = Interval.solve ?budget ~domain:(-64, 255) ~n_inputs:n pc

let test_interval_finds_rare_residue () =
  (* The generator's rare-bug shape: in[0] mod 64 = 13. *)
  let pc = [ atom_mod_eq 0 64 13 true ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Sat model -> checki "model residue" 13 (((model.(0) mod 64) + 64) mod 64)
  | _ -> Alcotest.fail "expected SAT"

let test_interval_unsat () =
  let pc = [ atom_lt 0 5; Path_cond.atom (Ir.Binop (Ir.Gt, Ir.Input 0, Ir.Const 10)) true ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Unsat -> ()
  | _ -> Alcotest.fail "contradictory bounds should be UNSAT"

let test_interval_multi_input () =
  let pc =
    [
      Path_cond.atom
        (Ir.Binop (Ir.Eq, Ir.Binop (Ir.Add, Ir.Input 0, Ir.Input 1), Ir.Const 100))
        true;
      atom_lt 0 3;
      Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const 0)) true;
    ]
  in
  match (solve pc ~n:2).Interval.verdict with
  | Interval.Sat model ->
    checkb "sum is 100" true (model.(0) + model.(1) = 100);
    checkb "first small" true (model.(0) < 3 && model.(0) >= 0)
  | _ -> Alcotest.fail "expected SAT"

let test_interval_domain_restriction () =
  (* in[0] > 300 has no model in domain [-64, 255]. *)
  let pc = [ Path_cond.atom (Ir.Binop (Ir.Gt, Ir.Input 0, Ir.Const 300)) true ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Unsat -> ()
  | _ -> Alcotest.fail "outside domain should be UNSAT"

let test_interval_empty_condition () =
  match (solve [] ~n:2).Interval.verdict with
  | Interval.Sat _ -> ()
  | _ -> Alcotest.fail "empty condition is trivially SAT"

let test_interval_negated_atoms () =
  let pc = [ atom_mod_eq 0 4 1 false; atom_lt 0 2 ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Sat model ->
    (* IR mod is OCaml's truncated mod; the negated atom speaks that
       dialect, so check it the same way. *)
    checkb "respects negation" true (model.(0) mod 4 <> 1);
    checkb "respects bound" true (model.(0) < 2)
  | _ -> Alcotest.fail "expected SAT"

let test_interval_check_only () =
  let impossible =
    [ atom_lt 0 0; Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const 0)) true ]
  in
  checkb "refutes impossible" true
    (Interval.check_interval_only ~domain:(-64, 255) ~n_inputs:1 impossible = `Infeasible);
  checkb "admits possible" true
    (Interval.check_interval_only ~domain:(-64, 255) ~n_inputs:1 [ atom_lt 0 10 ] = `Feasible)

let prop_interval_models_satisfy =
  QCheck.Test.make ~name:"interval SAT models satisfy the condition" ~count:150
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 11) in
      (* Random conjunctions of comparisons and residue constraints. *)
      let n = 1 + Rng.int rng 3 in
      let atoms =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let slot = Rng.int rng n in
            match Rng.int rng 3 with
            | 0 -> atom_lt slot (Rng.int_in rng (-10) 60)
            | 1 -> atom_mod_eq slot (2 + Rng.int rng 10) (Rng.int rng 5) (Rng.bool rng)
            | _ -> Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input slot, Ir.Const (Rng.int_in rng (-30) 30))) true)
      in
      match (solve atoms ~n).Interval.verdict with
      | Interval.Sat model -> Path_cond.satisfied_by atoms model
      | Interval.Unsat | Interval.Timeout -> true)

let prop_interval_unsat_means_no_model =
  QCheck.Test.make ~name:"interval UNSAT verified by sweep (1 input)" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 17) in
      let atoms =
        List.init 2 (fun _ ->
            match Rng.int rng 2 with
            | 0 -> atom_lt 0 (Rng.int_in rng (-20) 20)
            | _ -> atom_mod_eq 0 (2 + Rng.int rng 6) (Rng.int rng 4) (Rng.bool rng))
      in
      match (Interval.solve ~domain:(-20, 40) ~n_inputs:1 atoms).Interval.verdict with
      | Interval.Unsat ->
        (* Exhaustive check over the domain. *)
        not
          (List.exists
             (fun v -> Path_cond.satisfied_by atoms [| v |])
             (List.init 61 (fun k -> k - 20)))
      | Interval.Sat _ | Interval.Timeout -> true)

(* ---- Portfolio ---------------------------------------------------------- *)

(* A deterministic fake member: performs steps until [total], then (if
   [verdict] is a decision) reports it.  V_unknown fakes never decide
   and just burn budget. *)
let fake ?(budget = 1_000_000) name total verdict =
  {
    Portfolio.name;
    budget;
    start =
      (fun _ ->
        let steps = ref 0 in
        {
          Portfolio.step =
            (fun ~fuel ->
              let decides = verdict <> Portfolio.V_unknown in
              if decides && !steps >= total then `Done verdict
              else begin
                let burn = if decides then min fuel (total - !steps) else fuel in
                steps := !steps + max 1 burn;
                if decides && !steps >= total then `Done verdict else `More
              end);
          Portfolio.steps = (fun () -> !steps);
        });
  }

let test_race_preempts_losers () =
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  let result =
    Portfolio.race ~slice:16
      [
        fake "slow" 1000 Portfolio.V_sat;
        fake "fast" 10 Portfolio.V_sat;
        fake "lost" 5000 Portfolio.V_unknown;
      ]
      f
  in
  (* Round 1: slow burns one 16-step slice, fast decides at 10 — so
     fast wins and lost is never started on a slice. *)
  Alcotest.(check (option string)) "winner" (Some "fast") result.Portfolio.winner;
  checki "wall steps" 10 result.Portfolio.wall_steps;
  checki "resource steps" 26 result.Portfolio.resource_steps;
  checkb "verdict" true (result.Portfolio.verdict = Portfolio.V_sat)

let test_race_round_tie_break () =
  (* Two members decide within the same round: the one earlier in
     portfolio order wins, even with a worse step count — that is the
     deterministic schedule order the parallel mode reproduces. *)
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  let result =
    Portfolio.race ~slice:16 [ fake "a" 10 Portfolio.V_sat; fake "b" 5 Portfolio.V_sat ] f
  in
  Alcotest.(check (option string)) "winner" (Some "a") result.Portfolio.winner;
  checki "wall steps" 10 result.Portfolio.wall_steps;
  (* b never runs: a decides before b's first slice. *)
  checki "resource steps" 10 result.Portfolio.resource_steps

let test_race_all_unknown () =
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  let result =
    Portfolio.race ~slice:16
      [
        fake ~budget:100 "a" 0 Portfolio.V_unknown;
        fake ~budget:50 "b" 0 Portfolio.V_unknown;
      ]
      f
  in
  checkb "no winner" true (result.Portfolio.winner = None);
  checki "wall is max" 100 result.Portfolio.wall_steps;
  checki "resources are sum" 150 result.Portfolio.resource_steps

let test_standard_three_correct () =
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let f = random_formula rng ~n_vars:8 ~n_clauses:18 ~clause_len:3 in
    let brute = Brute.solve f in
    let result = Portfolio.race (Portfolio.standard_three ~budget:2_000_000 ~seed:9) f in
    match (result.Portfolio.verdict, brute) with
    | Portfolio.V_sat, Brute.Sat _ -> ()
    | Portfolio.V_unsat, Brute.Unsat -> ()
    | Portfolio.V_unknown, _ -> ()
    | Portfolio.V_sat, Brute.Unsat -> Alcotest.fail "portfolio claimed SAT on UNSAT"
    | Portfolio.V_unsat, Brute.Sat _ -> Alcotest.fail "portfolio claimed UNSAT on SAT"
  done

let test_whole_budget_wall_equals_best () =
  let rng = Rng.create 123 in
  for _ = 1 to 10 do
    let f = random_formula rng ~n_vars:12 ~n_clauses:40 ~clause_len:3 in
    let members = Portfolio.standard_three ~budget:2_000_000 ~seed:5 in
    let result = Portfolio.race_whole_budget members f in
    let deciders =
      List.filter
        (fun (r : Portfolio.run) -> r.Portfolio.verdict <> Portfolio.V_unknown)
        result.Portfolio.runs
    in
    match deciders with
    | [] -> ()
    | _ ->
      let best =
        List.fold_left (fun acc (r : Portfolio.run) -> min acc r.Portfolio.steps) max_int deciders
      in
      checki "wall = best single" best result.Portfolio.wall_steps
  done

let test_race_preemption_saves_resources () =
  (* The tentpole's point: on instances where profiles diverge, the
     preemptive race must execute strictly fewer steps than running
     everyone to the end. *)
  let rng = Rng.create 321 in
  let saved = ref 0 in
  for _ = 1 to 10 do
    let f = random_formula rng ~n_vars:10 ~n_clauses:25 ~clause_len:3 in
    let members seed = Portfolio.standard_three ~budget:2_000_000 ~seed in
    let sliced = Portfolio.race (members 5) f in
    let whole = Portfolio.race_whole_budget (members 5) f in
    checkb "verdicts agree" true (sliced.Portfolio.verdict = whole.Portfolio.verdict);
    checkb "sliced never does more" true
      (sliced.Portfolio.resource_steps <= whole.Portfolio.resource_steps);
    if sliced.Portfolio.resource_steps < whole.Portfolio.resource_steps then incr saved
  done;
  checkb "preemption saved work at least once" true (!saved > 0)

let test_speedup_guard () =
  checkb "nan on zero" true (Float.is_nan (Portfolio.speedup ~single_steps:10.0 ~portfolio_steps:0.0));
  Alcotest.(check (float 1e-9)) "ratio" 2.0 (Portfolio.speedup ~single_steps:10.0 ~portfolio_steps:5.0)

(* Satellite: sliced sequential, whole-budget, and the brute-force
   oracle must agree on verdicts, for any slice size. *)
let prop_race_verdicts_agree =
  QCheck.Test.make ~name:"race ~ whole-budget ~ brute verdicts" ~count:60 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 31) in
      let n_vars = 3 + Rng.int rng 7 in
      let n_clauses = 2 + Rng.int rng 22 in
      let f = random_formula rng ~n_vars ~n_clauses ~clause_len:3 in
      let members () = Portfolio.standard_three ~budget:2_000_000 ~seed:(seed + 1) in
      let brute = Brute.solve f in
      let sliced = Portfolio.race ~slice:(1 + Rng.int rng 500) (members ()) f in
      let whole = Portfolio.race_whole_budget (members ()) f in
      let agrees = function
        | Portfolio.V_sat -> (match brute with Brute.Sat _ -> true | Brute.Unsat -> false)
        | Portfolio.V_unsat -> brute = Brute.Unsat
        | Portfolio.V_unknown -> true
      in
      agrees sliced.Portfolio.verdict && agrees whole.Portfolio.verdict
      && sliced.Portfolio.verdict = whole.Portfolio.verdict)

(* Satellite: the parallel race must be byte-identical to the
   sequential one — verdict, winner, and every step count — for any
   pool size. *)
let prop_race_parallel_matches_sequential pool =
  QCheck.Test.make
    ~name:(Printf.sprintf "parallel race (pool=%d) = sequential" (Softborg_util.Pool.size pool))
    ~count:40 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 41) in
      let n_vars = 3 + Rng.int rng 7 in
      let f = random_formula rng ~n_vars ~n_clauses:(2 + Rng.int rng 20) ~clause_len:3 in
      let slice = 1 + Rng.int rng 300 in
      let members () = Portfolio.standard_three ~budget:500_000 ~seed:(seed + 2) in
      let sequential = Portfolio.race ~slice (members ()) f in
      (* [force_parallel] so the physical domain-racing path is
         exercised even on single-core CI hosts, where [race] would
         otherwise degrade to the sequential engine. *)
      let parallel = Portfolio.race ~slice ~pool ~force_parallel:true (members ()) f in
      sequential = parallel)

(* ---- Step slicing ------------------------------------------------------- *)

(* Drive a resumable machine with randomly-sized slices; trajectory
   and verdict must match the whole-budget run exactly. *)
let run_sliced rng step =
  let rec go () =
    match step ~fuel:(1 + Rng.int rng 64) with `Done v -> v | `More -> go ()
  in
  go ()

let prop_dpll_slicing_invariant =
  QCheck.Test.make ~name:"dpll slicing does not change the trajectory" ~count:80
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 51) in
      let f = random_formula rng ~n_vars:(3 + Rng.int rng 6) ~n_clauses:(2 + Rng.int rng 18) ~clause_len:3 in
      let whole = Dpll.start f in
      let sliced = Dpll.start f in
      let wv = match Dpll.step whole ~fuel:max_int with `Done v -> v | `More -> assert false in
      let sv = run_sliced rng (Dpll.step sliced) in
      let same_verdict =
        match (wv, sv) with
        | Dpll.Sat a, Dpll.Sat b -> a = b
        | Dpll.Unsat, Dpll.Unsat -> true
        | _ -> false
      in
      same_verdict && Dpll.steps whole = Dpll.steps sliced)

let prop_walksat_slicing_invariant =
  QCheck.Test.make ~name:"walksat slicing does not change the trajectory" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 61) in
      let f = random_formula rng ~n_vars:(3 + Rng.int rng 6) ~n_clauses:(2 + Rng.int rng 12) ~clause_len:3 in
      let whole = Walksat.start ~rng:(Rng.create seed) f in
      let sliced = Walksat.start ~rng:(Rng.create seed) f in
      let budget = 50_000 in
      let wv = Walksat.step whole ~fuel:budget in
      (* [fuel] is relative to the call ([start]'s recount already
         burned steps), so the sliced runner must budget consumed
         fuel, not absolute step counts. *)
      let start_steps = Walksat.steps sliced in
      let rec go () =
        let consumed = Walksat.steps sliced - start_steps in
        if consumed >= budget then `More
        else
          match Walksat.step sliced ~fuel:(min (1 + Rng.int rng 64) (budget - consumed)) with
          | `Done v -> `Done v
          | `More -> go ()
      in
      let sv = go () in
      match (wv, sv) with
      | `Done (Walksat.Sat a), `Done (Walksat.Sat b) ->
        a = b && Walksat.steps whole = Walksat.steps sliced
      | `More, `More -> Walksat.steps whole = Walksat.steps sliced
      | _ -> false)

let prop_interval_slicing_invariant =
  QCheck.Test.make ~name:"interval slicing does not change the trajectory" ~count:80
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 71) in
      let n = 1 + Rng.int rng 2 in
      let atoms =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let slot = Rng.int rng n in
            match Rng.int rng 3 with
            | 0 -> atom_lt slot (Rng.int_in rng (-10) 40)
            | 1 -> atom_mod_eq slot (2 + Rng.int rng 8) (Rng.int rng 5) (Rng.bool rng)
            | _ ->
              Path_cond.atom
                (Ir.Binop (Ir.Ge, Ir.Input slot, Ir.Const (Rng.int_in rng (-20) 20)))
                true)
      in
      let domain = (-20, 40) in
      let whole = Interval.start ~domain ~n_inputs:n atoms in
      let sliced = Interval.start ~domain ~n_inputs:n atoms in
      let wv = match Interval.step whole ~fuel:max_int with `Done v -> v | `More -> assert false in
      let sv = run_sliced rng (Interval.step sliced) in
      wv = sv && Interval.enum_steps whole = Interval.enum_steps sliced)

(* ---- Pc_solve and the verdict cache ------------------------------------- *)

module Pc_solve = Softborg_solver.Pc_solve
module Verdict_cache = Softborg_solver.Verdict_cache

let prop_pc_solve_agrees_with_interval =
  QCheck.Test.make ~name:"pc_solve race agrees with pure enumeration" ~count:80
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 81) in
      let n = 1 + Rng.int rng 2 in
      let atoms =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let slot = Rng.int rng n in
            match Rng.int rng 3 with
            | 0 -> atom_lt slot (Rng.int_in rng (-10) 40)
            | 1 -> atom_mod_eq slot (2 + Rng.int rng 8) (Rng.int rng 5) (Rng.bool rng)
            | _ ->
              Path_cond.atom
                (Ir.Binop (Ir.Ge, Ir.Input slot, Ir.Const (Rng.int_in rng (-20) 20)))
                true)
      in
      let domain = (-20, 40) in
      let pure = Interval.solve ~domain ~n_inputs:n atoms in
      let raced = Pc_solve.solve ~domain ~n_inputs:n atoms in
      match (pure.Interval.verdict, raced.Interval.verdict) with
      | Interval.Sat _, Interval.Sat model -> Path_cond.satisfied_by atoms model
      | Interval.Unsat, Interval.Unsat -> true
      | Interval.Timeout, _ | _, Interval.Timeout -> true
      | _ -> false)

let test_pc_solve_probe_wins_loose_condition () =
  (* A condition satisfied by almost every vector: the probe should
     decide far before the enumeration finishes its first pass, and
     the model must still check out. *)
  let atoms = [ Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const (-64))) true ] in
  let outcome = Pc_solve.solve ~domain:(-64, 255) ~n_inputs:3 atoms in
  match outcome.Interval.verdict with
  | Interval.Sat model -> checkb "model valid" true (Path_cond.satisfied_by atoms model)
  | _ -> Alcotest.fail "trivially satisfiable condition"

let test_verdict_cache_hits () =
  let cache = Verdict_cache.create () in
  let atoms = [ atom_mod_eq 0 64 13 true ] in
  let domain = (-64, 255) in
  let first = Pc_solve.solve ~cache ~domain ~n_inputs:1 atoms in
  let second = Pc_solve.solve ~cache ~domain ~n_inputs:1 atoms in
  checkb "same verdict" true (first.Interval.verdict = second.Interval.verdict);
  checki "hit costs nothing" 0 second.Interval.steps;
  checkb "first did real work" true (first.Interval.steps > 0);
  checki "one hit" 1 (Verdict_cache.hits cache);
  (* A different budget is a different query: no false hit. *)
  let third = Pc_solve.solve ~cache ~budget:123_456 ~domain ~n_inputs:1 atoms in
  checkb "different budget recomputes" true (third.Interval.steps > 0);
  Verdict_cache.clear cache;
  let fourth = Pc_solve.solve ~cache ~domain ~n_inputs:1 atoms in
  checkb "cleared cache recomputes" true (fourth.Interval.steps > 0)

let test_verdict_cache_check_kind_separate () =
  let cache = Verdict_cache.create () in
  let atoms = [ atom_lt 0 10 ] in
  let domain = (-64, 255) in
  let status = Pc_solve.check ~cache ~domain ~n_inputs:1 atoms in
  checkb "feasible" true (status = `Feasible);
  let again = Pc_solve.check ~cache ~domain ~n_inputs:1 atoms in
  checkb "stable" true (again = `Feasible);
  checki "check hit recorded" 1 (Verdict_cache.hits cache);
  (* The solve query for the same condition must not collide with the
     check entry. *)
  let solved = Pc_solve.solve ~cache ~domain ~n_inputs:1 atoms in
  checkb "solve still decides" true (solved.Interval.verdict <> Interval.Timeout)

let test_path_cond_digest () =
  let a = [ atom_lt 0 10; atom_mod_eq 1 4 2 true ] in
  let b = [ atom_lt 0 10; atom_mod_eq 1 4 2 true ] in
  let c = [ atom_lt 0 10; atom_mod_eq 1 4 2 false ] in
  checkb "equal conditions digest equally" true (Path_cond.digest a = Path_cond.digest b);
  checkb "expected flag matters" false (Path_cond.digest a = Path_cond.digest c);
  checkb "order matters" false
    (Path_cond.digest a = Path_cond.digest (List.rev a))

let () =
  let q = QCheck_alcotest.to_alcotest in
  let pool1 = Softborg_util.Pool.create ~size:1 in
  let pool2 = Softborg_util.Pool.create ~size:2 in
  let pool4 = Softborg_util.Pool.create ~size:4 in
  Fun.protect
    ~finally:(fun () -> List.iter Softborg_util.Pool.shutdown [ pool1; pool2; pool4 ])
  @@ fun () ->
  Alcotest.run "softborg_solver"
    [
      ( "cnf",
        [
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "bad literal" `Quick test_cnf_rejects_bad_literal;
          Alcotest.test_case "tseitin equisat" `Quick test_tseitin_equisatisfiable;
          Alcotest.test_case "tseitin constants" `Quick test_tseitin_constants;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "trivial" `Quick test_dpll_trivial;
          Alcotest.test_case "empty" `Quick test_dpll_empty_formula;
          Alcotest.test_case "timeout" `Quick test_dpll_timeout;
          q prop_dpll_maxocc;
          q prop_dpll_jw;
          q prop_dpll_random_branch;
        ] );
      ( "walksat",
        [
          Alcotest.test_case "finds model" `Quick test_walksat_finds_model;
          Alcotest.test_case "empty" `Quick test_walksat_empty;
          Alcotest.test_case "gives up on unsat" `Quick test_walksat_gives_up_on_unsat;
          q prop_walksat_models_valid;
        ] );
      ( "path_cond",
        [
          Alcotest.test_case "eval" `Quick test_path_cond_eval;
          Alcotest.test_case "metadata" `Quick test_path_cond_metadata;
          Alcotest.test_case "div0 traps" `Quick test_path_cond_div_zero_traps;
        ] );
      ( "interval",
        [
          Alcotest.test_case "rare residue" `Quick test_interval_finds_rare_residue;
          Alcotest.test_case "unsat" `Quick test_interval_unsat;
          Alcotest.test_case "multi input" `Quick test_interval_multi_input;
          Alcotest.test_case "domain restriction" `Quick test_interval_domain_restriction;
          Alcotest.test_case "empty condition" `Quick test_interval_empty_condition;
          Alcotest.test_case "negated atoms" `Quick test_interval_negated_atoms;
          Alcotest.test_case "check only" `Quick test_interval_check_only;
          q prop_interval_models_satisfy;
          q prop_interval_unsat_means_no_model;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "preempts losers" `Quick test_race_preempts_losers;
          Alcotest.test_case "round tie-break" `Quick test_race_round_tie_break;
          Alcotest.test_case "all unknown" `Quick test_race_all_unknown;
          Alcotest.test_case "standard three correct" `Quick test_standard_three_correct;
          Alcotest.test_case "whole-budget wall equals best" `Quick
            test_whole_budget_wall_equals_best;
          Alcotest.test_case "preemption saves resources" `Quick
            test_race_preemption_saves_resources;
          Alcotest.test_case "speedup guard" `Quick test_speedup_guard;
          q prop_race_verdicts_agree;
          q (prop_race_parallel_matches_sequential pool1);
          q (prop_race_parallel_matches_sequential pool2);
          q (prop_race_parallel_matches_sequential pool4);
        ] );
      ( "slicing",
        [
          q prop_dpll_slicing_invariant;
          q prop_walksat_slicing_invariant;
          q prop_interval_slicing_invariant;
        ] );
      ( "pc_solve",
        [
          Alcotest.test_case "probe wins loose condition" `Quick
            test_pc_solve_probe_wins_loose_condition;
          Alcotest.test_case "verdict cache hits" `Quick test_verdict_cache_hits;
          Alcotest.test_case "check/solve keys separate" `Quick
            test_verdict_cache_check_kind_separate;
          Alcotest.test_case "path-cond digest" `Quick test_path_cond_digest;
          q prop_pc_solve_agrees_with_interval;
        ] );
    ]
