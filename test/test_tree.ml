(* Tests for the collective execution tree: LCA-paste merging,
   frontier extraction, completeness, and merge invariants. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Exec_tree = Softborg_tree.Exec_tree
module Coverage = Softborg_tree.Coverage
module Rng = Softborg_util.Rng
module Codec = Softborg_util.Codec

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let path_of prog inputs =
  let env = Env.make ~seed:11 ~inputs () in
  let r = Interp.run ~program:prog ~env ~sched:Sched.Round_robin () in
  (r.Interp.full_path, r.Interp.outcome)

let merge tree prog inputs =
  let path, outcome = path_of prog inputs in
  Exec_tree.add_path tree path outcome

(* ---- Basic merging -------------------------------------------------- *)

let test_empty_tree () =
  let t = Exec_tree.create () in
  checki "one node (root)" 1 (Exec_tree.n_nodes t);
  checki "no executions" 0 (Exec_tree.n_executions t);
  checki "no paths" 0 (Exec_tree.n_distinct_paths t);
  checkb "vacuously complete" true (Exec_tree.is_complete t);
  checkf "completeness 1" 1.0 (Exec_tree.completeness t)

let test_single_path () =
  let t = Exec_tree.create () in
  let stats = merge t Corpus.fig2_write [| 5 |] in
  checki "no shared prefix in empty tree" 0 stats.Exec_tree.shared_depth;
  checki "two new nodes" 2 stats.Exec_tree.new_nodes;
  checkb "new path" true stats.Exec_tree.new_path;
  checki "executions" 1 (Exec_tree.n_executions t);
  checki "distinct paths" 1 (Exec_tree.n_distinct_paths t)

let test_duplicate_path_dedups () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  let stats = merge t Corpus.fig2_write [| 6 |] in
  (* p=5 and p=6 follow the same decisions: <100 and >0. *)
  checki "fully shared" 2 stats.Exec_tree.shared_depth;
  checki "no new nodes" 0 stats.Exec_tree.new_nodes;
  checkb "not a new path" false stats.Exec_tree.new_path;
  checki "executions counted" 2 (Exec_tree.n_executions t);
  checki "still one distinct path" 1 (Exec_tree.n_distinct_paths t)

let test_lca_paste () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  (* p=-1 shares the first decision (p<100 true) then diverges. *)
  let stats = merge t Corpus.fig2_write [| -1 |] in
  checki "LCA at depth 1" 1 stats.Exec_tree.shared_depth;
  checki "one new node" 1 stats.Exec_tree.new_nodes;
  checkb "new path" true stats.Exec_tree.new_path

let test_fig2_three_leaves () =
  let t = Exec_tree.create () in
  List.iter (fun p -> ignore (merge t Corpus.fig2_write [| p |])) [ 5; -1; 200; 6; -2; 300 ];
  checki "three distinct paths" 3 (Exec_tree.n_distinct_paths t);
  checki "three leaves worth of outcome" 6
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Exec_tree.outcome_buckets t))

let test_outcome_buckets () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.parser [| 7; 13; 5 |]);
  ignore (merge t Corpus.parser [| 1; 2; 3 |]);
  ignore (merge t Corpus.parser [| 2; 2; 3 |]);
  let buckets = Exec_tree.outcome_buckets t in
  checkb "has ok bucket" true (List.mem_assoc "ok" buckets);
  checkb "has crash bucket" true
    (List.exists (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "crash") buckets)

(* ---- Frontier and completeness --------------------------------------- *)

let test_frontier_after_one_path () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  (* Both decisions went one way; each opens a gap. *)
  let gaps = Exec_tree.frontier t in
  checki "two gaps" 2 (List.length gaps);
  checkb "sorted by hits descending" true
    (match gaps with a :: b :: _ -> a.Exec_tree.hits >= b.Exec_tree.hits | _ -> false)

let test_frontier_shrinks_with_coverage () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  let before = List.length (Exec_tree.frontier t) in
  ignore (merge t Corpus.fig2_write [| -1 |]);
  let after = List.length (Exec_tree.frontier t) in
  checkb "frontier shrank at covered node" true (after < before + 1);
  (* Covering the p>0=false direction closes that gap. *)
  ignore (merge t Corpus.fig2_write [| 200 |]);
  ignore (merge t Corpus.fig2_write [| 101 |])

let test_mark_infeasible_closes_gap () =
  let t = Exec_tree.create () in
  List.iter (fun p -> ignore (merge t Corpus.fig2_write [| p |])) [ 5; -1; 200 ];
  let gaps = Exec_tree.frontier t in
  (* Remaining gap: the p>3=false direction under p<100=false — which
     is genuinely infeasible (every p>=100 is >3). *)
  checki "one gap left" 1 (List.length gaps);
  let gap = List.hd gaps in
  checkb "marking works" true
    (Exec_tree.mark_infeasible t ~prefix:gap.Exec_tree.prefix ~site:gap.Exec_tree.site
       ~direction:gap.Exec_tree.missing);
  checki "frontier empty" 0 (List.length (Exec_tree.frontier t));
  checkb "tree complete" true (Exec_tree.is_complete t);
  checkf "completeness 1" 1.0 (Exec_tree.completeness t)

let test_mark_infeasible_bad_prefix () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  let fake_site = { Ir.thread = 0; pc = 0 } in
  checkb "bad prefix rejected" false
    (Exec_tree.mark_infeasible t
       ~prefix:[ (fake_site, true); (fake_site, true); (fake_site, false) ]
       ~site:fake_site ~direction:true)

let test_completeness_monotone () =
  let t = Exec_tree.create () in
  let c0 = Exec_tree.completeness t in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  let c1 = Exec_tree.completeness t in
  ignore (merge t Corpus.fig2_write [| -1 |]);
  let c2 = Exec_tree.completeness t in
  checkf "empty complete" 1.0 c0;
  checkb "partial coverage incomplete" true (c1 < 1.0);
  checkb "more coverage helps" true (c2 >= c1)

let test_path_outcomes_listing () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.parser [| 7; 13; 5 |]);
  ignore (merge t Corpus.parser [| 1; 2; 3 |]);
  let listed = Exec_tree.path_outcomes t in
  checki "two terminal paths" 2 (List.length listed);
  List.iter (fun (_, _, count) -> checki "count 1" 1 count) listed

let test_depth () =
  let t = Exec_tree.create () in
  ignore (merge t Corpus.parser [| 7; 13; 5 |]);
  let path, _ = path_of Corpus.parser [| 7; 13; 5 |] in
  checki "depth equals longest path" (List.length path) (Exec_tree.depth t)

(* ---- Multi-threaded paths -------------------------------------------- *)

let test_multithreaded_paths_merge () =
  let t = Exec_tree.create () in
  for seed = 0 to 30 do
    let env = Env.make ~seed:11 ~inputs:[| 0 |] () in
    let r =
      Interp.run ~program:Corpus.worker_pool ~env
        ~sched:(Sched.Random_sched (Rng.create seed))
        ()
    in
    ignore (Exec_tree.add_path t r.Interp.full_path r.Interp.outcome)
  done;
  checki "31 executions" 31 (Exec_tree.n_executions t);
  checkb "tree formed" true (Exec_tree.n_nodes t > 1)

(* ---- Properties ------------------------------------------------------- *)

let random_paths seed n =
  (* Build decision paths over a tiny site alphabet so prefixes collide. *)
  let rng = Rng.create seed in
  List.init n (fun _ ->
      let len = Rng.int_in rng 0 6 in
      List.init len (fun _ ->
          let site = { Ir.thread = 0; pc = Rng.int rng 3 } in
          (site, Rng.bool rng)))

let prop_merge_counts_consistent =
  QCheck.Test.make ~name:"executions and node counts consistent" ~count:200 QCheck.small_nat
    (fun seed ->
      let t = Exec_tree.create () in
      let paths = random_paths seed 20 in
      List.iter (fun p -> ignore (Exec_tree.add_path t p Outcome.Success)) paths;
      Exec_tree.n_executions t = 20
      && Exec_tree.n_distinct_paths t <= 20
      && Exec_tree.n_distinct_paths t >= 1
      && Exec_tree.n_edges t = Exec_tree.n_nodes t - 1)

let prop_remerge_idempotent_nodes =
  QCheck.Test.make ~name:"re-merging adds no nodes" ~count:200 QCheck.small_nat (fun seed ->
      let t = Exec_tree.create () in
      let paths = random_paths seed 10 in
      List.iter (fun p -> ignore (Exec_tree.add_path t p Outcome.Success)) paths;
      let nodes_before = Exec_tree.n_nodes t in
      List.iter
        (fun p ->
          let stats = Exec_tree.add_path t p Outcome.Success in
          assert (stats.Exec_tree.new_nodes = 0))
        paths;
      Exec_tree.n_nodes t = nodes_before)

let prop_distinct_paths_bounded_by_terminals =
  QCheck.Test.make ~name:"distinct paths equal terminal listing" ~count:200 QCheck.small_nat
    (fun seed ->
      let t = Exec_tree.create () in
      List.iter
        (fun p -> ignore (Exec_tree.add_path t p Outcome.Success))
        (random_paths seed 15);
      List.length (Exec_tree.path_outcomes t) = Exec_tree.n_distinct_paths t)

let prop_frontier_gaps_are_real =
  QCheck.Test.make ~name:"every frontier gap has an unexplored direction" ~count:100
    QCheck.small_nat (fun seed ->
      let t = Exec_tree.create () in
      List.iter
        (fun p -> ignore (Exec_tree.add_path t p Outcome.Success))
        (random_paths seed 12);
      List.for_all
        (fun gap ->
          (* Covering the gap then re-asking must remove it. *)
          let covered = gap.Exec_tree.prefix @ [ (gap.Exec_tree.site, gap.Exec_tree.missing) ] in
          ignore (Exec_tree.add_path t covered Outcome.Success);
          not
            (List.exists
               (fun g ->
                 g.Exec_tree.prefix = gap.Exec_tree.prefix
                 && Ir.site_equal g.Exec_tree.site gap.Exec_tree.site
                 && g.Exec_tree.missing = gap.Exec_tree.missing)
               (Exec_tree.frontier t)))
        (Exec_tree.frontier t))

(* ---- Incremental aggregates vs recompute oracles ----------------------- *)

(* Take the first [k] elements of a list (all of them if shorter). *)
let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

let frontier_top_matches_oracle t =
  let oracle = Exec_tree.frontier_recompute t in
  List.for_all
    (fun k -> Exec_tree.frontier_top t k = take k oracle)
    [ 0; 1; 2; 3; 8; List.length oracle; List.length oracle + 3 ]
  && List.of_seq (Exec_tree.frontier_seq t) = oracle

let aggregates_match_oracles t =
  Exec_tree.frontier t = Exec_tree.frontier_recompute t
  && frontier_top_matches_oracle t
  && Exec_tree.frontier_size t = List.length (Exec_tree.frontier t)
  && Exec_tree.n_edges t = Exec_tree.n_edges_recompute t
  && Exec_tree.depth t = Exec_tree.depth_recompute t
  && Exec_tree.is_complete t = Exec_tree.is_complete_recompute t
  && Float.abs (Exec_tree.completeness t -. Exec_tree.completeness_recompute t) < 1e-12
  && Exec_tree.outcome_buckets t = Exec_tree.outcome_buckets_recompute t

(* Randomized interleavings of add_path, mark_infeasible and
   checkpoint round-trips, checking every incremental aggregate — the
   ordered gap index included, via frontier/frontier_top/frontier_seq
   — against its full-walk oracle after every single operation.  Marks
   target real frontier gaps most of the time but sometimes a bogus
   (unobserved or already-explored) site or direction, to exercise the
   no-op accounting paths; the round-trip step continues on the
   restored tree, so post-restore index rebuilds feed later ops. *)
let prop_incremental_matches_oracles =
  QCheck.Test.make ~name:"incremental aggregates equal recompute oracles" ~count:1000
    QCheck.(pair small_nat (int_range 1 30))
    (fun (seed, n_ops) ->
      let rng = Rng.create ((seed * 131) + n_ops) in
      let t = ref (Exec_tree.create ()) in
      let ok = ref true in
      for _ = 1 to n_ops do
        (if Rng.bernoulli rng 0.7 then begin
           let len = Rng.int_in rng 0 6 in
           let path =
             List.init len (fun _ -> ({ Ir.thread = 0; pc = Rng.int rng 3 }, Rng.bool rng))
           in
           let outcome = if Rng.bernoulli rng 0.8 then Outcome.Success else Outcome.Hang in
           ignore (Exec_tree.add_path !t path outcome)
         end
         else if Rng.bernoulli rng 0.8 then begin
           match Exec_tree.frontier !t with
           | [] -> ()
           | gaps ->
             let gap = List.nth gaps (Rng.int rng (List.length gaps)) in
             let site =
               if Rng.bernoulli rng 0.8 then gap.Exec_tree.site
               else { Ir.thread = 0; pc = Rng.int rng 5 }
             in
             let direction =
               if Rng.bernoulli rng 0.8 then gap.Exec_tree.missing else Rng.bool rng
             in
             ignore (Exec_tree.mark_infeasible !t ~prefix:gap.Exec_tree.prefix ~site ~direction)
         end
         else begin
           (* Checkpoint round-trip: the restored tree rebuilds its
              aggregates (gap index included) from structure alone. *)
           let w = Codec.Writer.create () in
           Exec_tree.write w !t;
           t := Exec_tree.read (Codec.Reader.of_string (Codec.Writer.contents w))
         end);
        ok := !ok && aggregates_match_oracles !t
      done;
      !ok)

let test_version_change_detection () =
  let t = Exec_tree.create () in
  let v0 = Exec_tree.version t in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  let v1 = Exec_tree.version t in
  checkb "new path bumps version" true (v1 > v0);
  ignore (merge t Corpus.fig2_write [| 6 |]);
  (* p=6 follows the same decisions as p=5: a duplicate path. *)
  checki "duplicate path leaves version" v1 (Exec_tree.version t);
  let gap = List.hd (Exec_tree.frontier t) in
  checkb "mark accepted" true
    (Exec_tree.mark_infeasible t ~prefix:gap.Exec_tree.prefix ~site:gap.Exec_tree.site
       ~direction:gap.Exec_tree.missing);
  checkb "closing a gap bumps version" true (Exec_tree.version t > v1);
  let v2 = Exec_tree.version t in
  checkb "re-marking accepted" true
    (Exec_tree.mark_infeasible t ~prefix:gap.Exec_tree.prefix ~site:gap.Exec_tree.site
       ~direction:gap.Exec_tree.missing);
  checki "re-marking leaves version" v2 (Exec_tree.version t)

(* ---- Coverage recorder ------------------------------------------------- *)

let test_coverage_snapshots () =
  let t = Exec_tree.create () in
  let cov = Coverage.create () in
  Coverage.observe cov t;
  ignore (merge t Corpus.fig2_write [| 5 |]);
  Coverage.observe cov t;
  ignore (merge t Corpus.fig2_write [| -1 |]);
  Coverage.observe cov t;
  let snaps = Coverage.snapshots cov in
  checki "three snapshots" 3 (List.length snaps);
  let execs = List.map (fun s -> s.Coverage.executions) snaps in
  Alcotest.(check (list int)) "execution counts" [ 0; 1; 2 ] execs

let test_coverage_executions_to_reach () =
  let t = Exec_tree.create () in
  let cov = Coverage.create () in
  ignore (merge t Corpus.fig2_write [| 5 |]);
  Coverage.observe cov t;
  ignore (merge t Corpus.fig2_write [| -1 |]);
  Coverage.observe cov t;
  Alcotest.(check (option int)) "reach 2 paths at exec 2" (Some 2)
    (Coverage.executions_to_reach cov ~paths:2);
  Alcotest.(check (option int)) "never reached 5 paths" None
    (Coverage.executions_to_reach cov ~paths:5)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_tree"
    [
      ( "merging",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "single path" `Quick test_single_path;
          Alcotest.test_case "duplicate dedups" `Quick test_duplicate_path_dedups;
          Alcotest.test_case "LCA paste" `Quick test_lca_paste;
          Alcotest.test_case "fig2 three leaves" `Quick test_fig2_three_leaves;
          Alcotest.test_case "outcome buckets" `Quick test_outcome_buckets;
          Alcotest.test_case "multithreaded merge" `Quick test_multithreaded_paths_merge;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "gaps after one path" `Quick test_frontier_after_one_path;
          Alcotest.test_case "shrinks with coverage" `Quick test_frontier_shrinks_with_coverage;
          Alcotest.test_case "mark infeasible" `Quick test_mark_infeasible_closes_gap;
          Alcotest.test_case "bad prefix" `Quick test_mark_infeasible_bad_prefix;
          Alcotest.test_case "completeness monotone" `Quick test_completeness_monotone;
          Alcotest.test_case "path outcomes" `Quick test_path_outcomes_listing;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
      ( "properties",
        [
          q prop_merge_counts_consistent;
          q prop_remerge_idempotent_nodes;
          q prop_distinct_paths_bounded_by_terminals;
          q prop_frontier_gaps_are_real;
          q prop_incremental_matches_oracles;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "version change detection" `Quick test_version_change_detection;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "snapshots" `Quick test_coverage_snapshots;
          Alcotest.test_case "executions to reach" `Quick test_coverage_executions_to_reach;
        ] );
    ]
