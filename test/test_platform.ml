(* Integration tests for the whole platform: metrics, the three modes,
   determinism, and behavior under a degraded network. *)

module Corpus = Softborg_prog.Corpus
module Exec_tree = Softborg_tree.Exec_tree
module Knowledge = Softborg_hive.Knowledge
module Prover = Softborg_hive.Prover
module Hive = Softborg_hive.Hive
module Transport = Softborg_net.Transport
module Link = Softborg_net.Link
module Sim = Softborg_net.Sim
module Rng = Softborg_util.Rng
module Fault_plan = Softborg_net.Fault_plan
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* ---- Metrics ---------------------------------------------------------- *)

let snap ~time ~sessions ~failures =
  {
    Metrics.time;
    sessions;
    guided_runs = 0;
    user_failures = failures;
    averted_crashes = 0;
    deferred_acquisitions = 0;
    guard_flags = 0;
    traces_uploaded = 0;
    fixes_deployed = 0;
    proofs_valid = 0;
    tree_paths = 0;
    tree_completeness = 0.0;
    checkpoints = 0;
    restores = 0;
    shed_uploads = 0;
    quarantined_frames = 0;
    pods_muted = 0;
    peak_queue_depth = 0;
    thinned_uploads = 0;
    dead_letters = 0;
    wire_bytes = 0;
    wire_frames_sent = 0;
    wire_frames_received = 0;
    gap_memo_hits = 0;
    gap_memo_misses = 0;
    verdict_cache_hits = 0;
    verdict_cache_misses = 0;
    canary_fixes = 0;
    fix_promotions = 0;
    fix_retractions = 0;
    quarantined_fix_traces = 0;
    pods_exposed = 0;
  }

let test_metrics_failure_rate () =
  checkf "rate" 0.1 (Metrics.failure_rate (snap ~time:0.0 ~sessions:100 ~failures:10));
  checkf "empty" 0.0 (Metrics.failure_rate (snap ~time:0.0 ~sessions:0 ~failures:0))

let test_metrics_windows () =
  let snaps =
    [
      snap ~time:0.0 ~sessions:0 ~failures:0;
      snap ~time:10.0 ~sessions:100 ~failures:5;
      snap ~time:20.0 ~sessions:250 ~failures:5;
    ]
  in
  match Metrics.windows snaps with
  | [ w1; w2 ] ->
    checki "w1 sessions" 100 w1.Metrics.w_sessions;
    checki "w1 failures" 5 w1.Metrics.w_failures;
    checkf "w1 rate" 0.05 w1.Metrics.w_failure_rate;
    checki "w2 sessions" 150 w2.Metrics.w_sessions;
    checkf "w2 rate" 0.0 w2.Metrics.w_failure_rate
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws)

let test_metrics_windows_degenerate () =
  checki "no windows from one snapshot" 0
    (List.length (Metrics.windows [ snap ~time:0.0 ~sessions:0 ~failures:0 ]));
  checki "none from empty" 0 (List.length (Metrics.windows []))

let test_metrics_zero_session_window () =
  (* An idle window (no sessions between snapshots) must not divide by
     zero; its rate is defined as 0. *)
  let snaps =
    [ snap ~time:0.0 ~sessions:40 ~failures:2; snap ~time:10.0 ~sessions:40 ~failures:2 ]
  in
  (match Metrics.windows snaps with
  | [ w ] ->
    checki "no sessions" 0 w.Metrics.w_sessions;
    checkf "rate guarded" 0.0 w.Metrics.w_failure_rate
  | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws));
  (* Same guard on the cumulative rate. *)
  checkf "cumulative guarded" 0.0 (Metrics.failure_rate (snap ~time:0.0 ~sessions:0 ~failures:0))

(* ---- Platform runs ------------------------------------------------------ *)

let quick_config ?mode program =
  let config = Scenario.single_program ?mode program in
  {
    config with
    Platform.n_pods = 3;
    duration = 120.0;
    sample_interval = 30.0;
    pod_config =
      {
        config.Platform.pod_config with
        Pod.arrival_rate = 1.0;
        workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
      };
  }

let test_platform_full_mode_runs () =
  let report = Platform.run (quick_config Corpus.fig2_write) in
  let f = report.Platform.final in
  checkb "sessions happened" true (f.Metrics.sessions > 50);
  checkb "traces reached the hive" true (report.Platform.hive_stats.Hive.traces_received > 0);
  (match report.Platform.knowledge with
  | [ k ] ->
    checkb "tree built" true (Exec_tree.n_distinct_paths (Knowledge.tree k) >= 2);
    checki "no replay errors" 0 (Knowledge.replay_errors k)
  | ks -> Alcotest.failf "expected one knowledge entry, got %d" (List.length ks));
  (* Snapshot series is monotone in time and counters. *)
  let rec monotone = function
    | (a : Metrics.snapshot) :: (b :: _ as rest) ->
      a.Metrics.time < b.Metrics.time && a.Metrics.sessions <= b.Metrics.sessions && monotone rest
    | _ -> true
  in
  checkb "snapshots monotone" true (monotone report.Platform.snapshots)

let test_platform_deterministic () =
  let run () =
    let report = Platform.run (quick_config Corpus.parser) in
    let f = report.Platform.final in
    (f.Metrics.sessions, f.Metrics.user_failures, f.Metrics.traces_uploaded)
  in
  let a = run () in
  let b = run () in
  checkb "same seed, same outcome" true (a = b)

let test_platform_pool_size_invariant () =
  (* The hive's speculative gap-solver pool must not leak into any
     observable output: the full formatted report of a fault-free
     simulation is byte-identical for every pool size. *)
  let render pool_size =
    let config = quick_config Corpus.parser in
    let config =
      {
        config with
        Platform.hive_config = { config.Platform.hive_config with Hive.pool_size };
      }
    in
    Format.asprintf "%a" Platform.pp_report (Platform.run config)
  in
  let baseline = render 1 in
  checkb "report not empty" true (String.length baseline > 0);
  List.iter
    (fun size ->
      Alcotest.(check string) (Printf.sprintf "pool_size %d byte-identical" size) baseline
        (render size))
    [ 2; 4 ]

let test_platform_wer_mode_builds_no_tree () =
  let report = Platform.run (quick_config ~mode:Hive.Wer Corpus.fig2_write) in
  match report.Platform.knowledge with
  | [ k ] ->
    checki "no tree from outcome-only uploads" 0 (Exec_tree.n_distinct_paths (Knowledge.tree k));
    checkb "but traces were counted" true (Knowledge.traces_ingested k > 0)
  | _ -> Alcotest.fail "expected one knowledge entry"

let test_platform_cbi_mode_feeds_isolator () =
  let report = Platform.run (quick_config ~mode:Hive.Cbi Corpus.parser) in
  match report.Platform.knowledge with
  | [ k ] ->
    checkb "isolator saw runs" true (Softborg_hive.Isolate.runs (Knowledge.isolate k) > 0)
  | _ -> Alcotest.fail "expected one knowledge entry"

let test_platform_lossy_network_loses_nothing () =
  let config = Scenario.lossy_network (quick_config Corpus.fig2_write) in
  let report = Platform.run config in
  (* The reliable transport must deliver every pod upload despite 10%
     packet loss (retransmissions cover the gap). *)
  List.iter
    (fun (s : Transport.stats) ->
      checki "nothing abandoned" 0 s.Transport.gave_up)
    report.Platform.transport_stats;
  let uploaded = report.Platform.final.Metrics.traces_uploaded in
  checkb "hive received all uploads" true
    (report.Platform.hive_stats.Hive.traces_received >= uploaded * 9 / 10);
  let retrans =
    List.fold_left
      (fun acc (s : Transport.stats) -> acc + s.Transport.retransmissions)
      0 report.Platform.transport_stats
  in
  checkb "retransmissions occurred" true (retrans > 0)

let test_platform_guided_fix_before_user_failure () =
  (* Rare bug + skewed workload: guidance finds and fixes it with no
     user-visible failure (the E4 headline, as a regression test). *)
  let config = Scenario.single_program ~seed:21 Corpus.parser in
  let config =
    {
      config with
      Platform.duration = 400.0;
      sample_interval = 100.0;
      n_pods = 4;
      pod_config =
        {
          config.Platform.pod_config with
          Pod.workload = Workload.Zipf_inputs { lo = 0; hi = 191; exponent = 1.3 };
          arrival_rate = 1.0;
        };
    }
  in
  let report = Platform.run config in
  let k = List.hd report.Platform.knowledge in
  let deployable = List.filter Softborg_hive.Fixgen.is_deployable (Knowledge.fixes k) in
  checkb "guided exploration produced a fix" true (deployable <> []);
  checki "no user-visible failures" 0 report.Platform.final.Metrics.user_failures

let test_platform_duplicating_network_no_double_count () =
  (* A packet-cloning link between pod and hive: the transport suppresses
     the clones, so the hive ingests each uploaded trace exactly once. *)
  let sim = Sim.create () in
  let rng = Rng.create 99 in
  let hive = Hive.create ~sim () in
  let program = Corpus.fig2_write in
  ignore (Hive.register_program hive program);
  let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.split rng) () in
  (match Transport.out_link pod_end with
  | Some l -> Link.set_duplicate_probability l 0.7
  | None -> Alcotest.fail "pod endpoint has no link");
  Hive.attach_pod hive hive_end;
  let pod_config =
    {
      Pod.default_config with
      Pod.arrival_rate = 2.0;
      workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
    }
  in
  let pod =
    Pod.create ~config:pod_config ~sim ~rng:(Rng.split rng) ~program ~endpoint:pod_end ()
  in
  Hive.start hive;
  Pod.start pod;
  Sim.run ~until:60.0 sim;
  let uploaded = (Pod.metrics pod).Pod.traces_uploaded in
  let hive_stats = Hive.stats hive in
  let sh = Transport.stats hive_end in
  checkb "clones hit the wire" true (sh.Transport.duplicates_suppressed > 0);
  checkb "traces flowed" true (uploaded > 0);
  checki "hive saw each upload exactly once" uploaded hive_stats.Hive.traces_received;
  match Hive.knowledge_list hive with
  | [ k ] -> checki "knowledge never double-counts" uploaded (Knowledge.traces_ingested k)
  | _ -> Alcotest.fail "expected one knowledge entry"

(* ---- Chaos harness ----------------------------------------------------- *)

let trajectory report =
  List.map
    (fun (s : Metrics.snapshot) ->
      (s.Metrics.time, s.Metrics.sessions, s.Metrics.user_failures))
    report.Platform.snapshots

(* Everything about a proof except its id: the restored hive re-bumps
   the global id counter, so ids may diverge while content must not. *)
let proof_shape (p : Prover.proof) =
  (p.Prover.property, p.Prover.strength, p.Prover.epoch, p.Prover.distinct_paths, p.Prover.valid)

let test_platform_chaos_checkpoint_identity () =
  (* Kill the hive right after a checkpoint, several times mid-run.  The
     restored knowledge must be observationally identical, so the whole
     run matches its fault-free twin: same failure trajectory, same fix
     epoch, same proof set. *)
  let base = quick_config Corpus.parser in
  let plain = Platform.run base in
  let plan =
    Fault_plan.create
      [
        Fault_plan.Checkpoint { at = 30.0 };
        Fault_plan.Hive_crash { at = 30.0 };
        Fault_plan.Checkpoint { at = 70.0 };
        Fault_plan.Hive_crash { at = 70.0 };
        Fault_plan.Checkpoint { at = 100.0 };
        Fault_plan.Hive_crash { at = 100.0 };
      ]
  in
  let chaos =
    Platform.run { base with Platform.chaos = Some plan; checkpoint_interval = 0.0 }
  in
  checkb "same trajectory" true (trajectory plain = trajectory chaos);
  checki "three restores" 3 chaos.Platform.final.Metrics.restores;
  match (plain.Platform.knowledge, chaos.Platform.knowledge) with
  | [ kp ], [ kc ] ->
    checki "same epoch" (Knowledge.epoch kp) (Knowledge.epoch kc);
    checki "same traces ingested" (Knowledge.traces_ingested kp) (Knowledge.traces_ingested kc);
    checki "same tree version" (Exec_tree.version (Knowledge.tree kp))
      (Exec_tree.version (Knowledge.tree kc));
    checki "same distinct paths" (Exec_tree.n_distinct_paths (Knowledge.tree kp))
      (Exec_tree.n_distinct_paths (Knowledge.tree kc));
    checkb "same proofs (modulo ids)" true
      (List.map proof_shape (Knowledge.proofs kp) = List.map proof_shape (Knowledge.proofs kc))
  | _ -> Alcotest.fail "expected one knowledge entry per run"

let test_platform_chaos_rollback_recovers () =
  (* A crash 40 simulated seconds after the last checkpoint rolls real
     knowledge back; the fleet must shrug it off — keep running
     sessions, relearn, and survive churn and a degraded-link window. *)
  let base = quick_config Corpus.fig2_write in
  let plan =
    Fault_plan.create
      [
        Fault_plan.Checkpoint { at = 20.0 };
        Fault_plan.Degrade
          {
            at = 40.0;
            until_ = 55.0;
            link = { Link.drop_probability = 0.3; mean_latency = 0.4; min_latency = 0.05 };
          };
        Fault_plan.Hive_crash { at = 60.0 };
        Fault_plan.Pod_leave { at = 70.0; pod = 1 };
        Fault_plan.Pod_join { at = 80.0 };
      ]
  in
  let report =
    Platform.run { base with Platform.chaos = Some plan; checkpoint_interval = 0.0 }
  in
  let f = report.Platform.final in
  checki "one restore" 1 f.Metrics.restores;
  checkb "checkpoints taken" true (f.Metrics.checkpoints >= 2);
  checkb "fleet kept running" true (f.Metrics.sessions > 50);
  checki "joined pod reported" 4 (List.length report.Platform.pod_metrics);
  match report.Platform.knowledge with
  | [ k ] ->
    checkb "hive relearned after rollback" true (Knowledge.traces_ingested k > 0);
    checkb "tree rebuilt" true (Exec_tree.n_distinct_paths (Knowledge.tree k) >= 1)
  | ks -> Alcotest.failf "expected one knowledge entry, got %d" (List.length ks)

let test_platform_chaos_deterministic () =
  (* A generated fault plan replays bit-for-bit from its seed. *)
  let run () =
    let config = Scenario.with_chaos ~crash_rate:0.01 ~churn_rate:0.01 (quick_config Corpus.parser) in
    let report = Platform.run config in
    let f = report.Platform.final in
    (trajectory report, f.Metrics.checkpoints, f.Metrics.restores)
  in
  checkb "same chaos seed, same outcome" true (run () = run ())

let () =
  Alcotest.run "softborg_platform"
    [
      ( "metrics",
        [
          Alcotest.test_case "failure rate" `Quick test_metrics_failure_rate;
          Alcotest.test_case "windows" `Quick test_metrics_windows;
          Alcotest.test_case "degenerate windows" `Quick test_metrics_windows_degenerate;
          Alcotest.test_case "zero-session window" `Quick test_metrics_zero_session_window;
        ] );
      ( "platform",
        [
          Alcotest.test_case "full mode" `Quick test_platform_full_mode_runs;
          Alcotest.test_case "deterministic" `Quick test_platform_deterministic;
          Alcotest.test_case "pool size invariance" `Quick test_platform_pool_size_invariant;
          Alcotest.test_case "wer mode" `Quick test_platform_wer_mode_builds_no_tree;
          Alcotest.test_case "cbi mode" `Quick test_platform_cbi_mode_feeds_isolator;
          Alcotest.test_case "lossy network" `Quick test_platform_lossy_network_loses_nothing;
          Alcotest.test_case "guided fix first" `Quick test_platform_guided_fix_before_user_failure;
          Alcotest.test_case "duplicating network" `Quick test_platform_duplicating_network_no_double_count;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "checkpoint identity" `Quick test_platform_chaos_checkpoint_identity;
          Alcotest.test_case "rollback recovers" `Quick test_platform_chaos_rollback_recovers;
          Alcotest.test_case "deterministic" `Quick test_platform_chaos_deterministic;
        ] );
    ]
