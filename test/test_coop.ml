(* Tests for cooperative symbolic execution: job/result wire formats,
   the worker, and the coordinator driving a tree's frontier to closure
   over a lossy network. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Exec_tree = Softborg_tree.Exec_tree
module Coop = Softborg_hive.Coop_symexec
module Allocate = Softborg_hive.Allocate
module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Testgen = Softborg_symexec.Testgen
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let site thread pc = { Ir.thread; pc }

(* ---- Wire formats -------------------------------------------------- *)

let test_job_roundtrip () =
  let job =
    { Coop.job_id = 7; gaps = [ (site 0 3, true); (site 1 9, false) ]; budget_per_gap = 5000 }
  in
  match Coop.decode_job (Coop.encode_job job) with
  | Ok back -> checkb "job roundtrips" true (back = job)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_result_roundtrip () =
  let result =
    {
      Coop.job_id = 7;
      verdicts =
        [
          ( (site 0 3, true),
            Coop.Gap_feasible
              { Testgen.inputs = [| -5; 200 |]; fault_plan = Env.Targeted [ 1 ] } );
          ((site 0 4, false), Coop.Gap_infeasible);
          ((site 1 2, true), Coop.Gap_unknown);
        ];
      steps_spent = 1234;
    }
  in
  match Coop.decode_result (Coop.encode_result result) with
  | Ok back -> checkb "result roundtrips" true (back = result)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_decode_rejects_garbage () =
  checkb "job garbage" true (Result.is_error (Coop.decode_job "\xff\xff\xff"));
  checkb "result garbage" true (Result.is_error (Coop.decode_result "\xff\xff\xff"))

(* ---- Worker ----------------------------------------------------------- *)

let test_worker_answers_jobs () =
  let sim = Sim.create () in
  let coord_end, worker_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 3) () in
  let worker = Coop.Worker.create ~program:Corpus.fig2_write ~endpoint:worker_end () in
  let results = ref [] in
  Transport.on_receive coord_end (fun payload ->
      match Coop.decode_result payload with
      | Ok result -> results := result :: !results
      | Error _ -> ());
  (* fig2's branch sites: ask for both directions of the first one. *)
  let branch = List.hd (Ir.branch_sites Corpus.fig2_write) in
  let job =
    { Coop.job_id = 1; gaps = [ (branch, true); (branch, false) ]; budget_per_gap = 50_000 }
  in
  Transport.send coord_end (Coop.encode_job job);
  Sim.run sim;
  checki "one result" 1 (List.length !results);
  checki "worker served" 1 (Coop.Worker.jobs_served worker);
  let result = List.hd !results in
  checki "two verdicts" 2 (List.length result.Coop.verdicts);
  List.iter
    (fun (_, verdict) ->
      match verdict with
      | Coop.Gap_feasible _ -> ()
      | _ -> Alcotest.fail "both directions of fig2's first branch are feasible")
    result.Coop.verdicts

(* ---- Coordinator ---------------------------------------------------------- *)

let partial_tree program inputs_list =
  let tree = Exec_tree.create () in
  List.iter
    (fun inputs ->
      let env = Env.make ~seed:1 ~inputs () in
      let r = Interp.run ~program ~env ~sched:Sched.Round_robin () in
      ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome))
    inputs_list;
  tree

let run_coordinator ?(n_workers = 3) ?(drop = 0.0) ~program ~tree ~until () =
  let sim = Sim.create () in
  let rng = Rng.create 11 in
  let link = { Link.drop_probability = drop; mean_latency = 0.02; min_latency = 0.001 } in
  let config = { Transport.default_config with Transport.link } in
  let worker_ends =
    List.init n_workers (fun _ ->
        let coord_end, worker_end = Transport.endpoint_pair ~config ~sim ~rng:(Rng.split rng) () in
        ignore (Coop.Worker.create ~program ~endpoint:worker_end ());
        coord_end)
  in
  let coordinator = Coop.Coordinator.create ~sim ~program ~tree ~workers:worker_ends () in
  Coop.Coordinator.start coordinator;
  Sim.run ~until sim;
  coordinator

let test_coordinator_closes_fig2_frontier () =
  (* One observed execution leaves 2 gaps (one feasible each way plus
     the infeasible fig2 leaf); the pool must close them all. *)
  let tree = partial_tree Corpus.fig2_write [ [| 5 |] ] in
  checkb "frontier open initially" true (Exec_tree.frontier_size tree > 0);
  let coordinator =
    run_coordinator ~program:Corpus.fig2_write ~tree ~until:120.0 ()
  in
  checkb "coordinator done" true (Coop.Coordinator.done_ coordinator);
  checkb "tree complete" true (Exec_tree.is_complete tree);
  let p = Coop.Coordinator.progress coordinator in
  checkb "gaps were resolved" true (p.Coop.Coordinator.gaps_resolved >= 2);
  checkb "results flowed" true (p.Coop.Coordinator.results_received >= 1)

let test_coordinator_finds_rare_crash () =
  (* Common parser paths only; the cooperative pool must find the
     crash direction and return concrete inputs for it. *)
  let tree =
    partial_tree Corpus.parser [ [| 1; 2; 3 |]; [| 7; 2; 3 |]; [| 7; 13; 4 |]; [| 5; 5; 5 |] ]
  in
  let coordinator = run_coordinator ~program:Corpus.parser ~tree ~until:200.0 () in
  checkb "done" true (Coop.Coordinator.done_ coordinator);
  let p = Coop.Coordinator.progress coordinator in
  (* One of the discovered tests must trigger the crash. *)
  let triggers_crash (test : Testgen.test_case) =
    let env = Env.make ~fault_plan:test.Testgen.fault_plan ~seed:1 ~inputs:test.Testgen.inputs () in
    let r = Interp.run ~program:Corpus.parser ~env ~sched:Sched.Round_robin () in
    Softborg_exec.Outcome.is_failure r.Interp.outcome
  in
  checkb "a worker-found test triggers the rare crash" true
    (List.exists triggers_crash p.Coop.Coordinator.tests_found)

let test_coordinator_survives_lossy_network () =
  let tree = partial_tree Corpus.fig2_write [ [| 5 |] ] in
  let coordinator =
    run_coordinator ~drop:0.25 ~program:Corpus.fig2_write ~tree ~until:300.0 ()
  in
  checkb "closure despite 25% loss" true (Coop.Coordinator.done_ coordinator)

let test_coordinator_validates_worker_results () =
  (* A malicious/buggy worker claiming feasibility with bogus inputs
     must not corrupt the tree: the coordinator validates centrally. *)
  let tree = partial_tree Corpus.parser [ [| 1; 2; 3 |] ] in
  let sim = Sim.create () in
  let coord_end, worker_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 9) () in
  (* A fake worker that answers every gap with garbage inputs. *)
  Transport.on_receive worker_end (fun payload ->
      match Coop.decode_job payload with
      | Error _ -> ()
      | Ok job ->
        let verdicts =
          List.map
            (fun gap ->
              (gap, Coop.Gap_feasible { Testgen.inputs = [| 0; 0; 0 |]; fault_plan = Env.No_faults }))
            job.Coop.gaps
        in
        Transport.send worker_end
          (Coop.encode_result { Coop.job_id = job.Coop.job_id; verdicts; steps_spent = 1 }));
  let coordinator =
    Coop.Coordinator.create ~sim ~program:Corpus.parser ~tree ~workers:[ coord_end ] ()
  in
  Coop.Coordinator.start coordinator;
  let paths_before = Exec_tree.n_distinct_paths tree in
  Sim.run ~until:30.0 sim;
  (* Inputs [0;0;0] cover only the already-known common path; the
     coordinator must reject them for unreached gaps and retire those
     gaps rather than trusting the worker. *)
  checkb "tree not corrupted" true (Exec_tree.n_distinct_paths tree <= paths_before + 1);
  checkb "bogus gaps retired, not looping forever" true (Coop.Coordinator.done_ coordinator)

let test_coordinator_allocation_learns () =
  (* With several subtrees, repeated rounds should record rewards on
     the allocator's tasks (smoke test of the portfolio loop). *)
  let tree = partial_tree Corpus.file_copy [ [| 1; 0 |]; [| 9; 3 |] ] in
  let coordinator =
    run_coordinator ~n_workers:4 ~program:Corpus.file_copy ~tree ~until:200.0 ()
  in
  let p = Coop.Coordinator.progress coordinator in
  checkb "multiple jobs dispatched" true (p.Coop.Coordinator.jobs_sent >= 2);
  checkb "worker steps accounted" true (p.Coop.Coordinator.worker_steps > 0)

let () =
  Alcotest.run "softborg_coop"
    [
      ( "wire",
        [
          Alcotest.test_case "job roundtrip" `Quick test_job_roundtrip;
          Alcotest.test_case "result roundtrip" `Quick test_result_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
        ] );
      ("worker", [ Alcotest.test_case "answers jobs" `Quick test_worker_answers_jobs ]);
      ( "coordinator",
        [
          Alcotest.test_case "closes fig2 frontier" `Quick test_coordinator_closes_fig2_frontier;
          Alcotest.test_case "finds rare crash" `Quick test_coordinator_finds_rare_crash;
          Alcotest.test_case "lossy network" `Quick test_coordinator_survives_lossy_network;
          Alcotest.test_case "validates results" `Quick test_coordinator_validates_worker_results;
          Alcotest.test_case "allocation learns" `Quick test_coordinator_allocation_learns;
        ] );
    ]
