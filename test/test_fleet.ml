(* Fleet-scale ingestion: the delta/prefix record codec, batched upload
   frames, basis announcement, batch-aware dead-letter accounting, and
   the central invariant — the hive's knowledge bytes are a pure
   function of the trace multiset, independent of how the pods framed
   it (singles, batches, deltas) and of the decode pool size. *)

module Rng = Softborg_util.Rng
module Bitvec = Softborg_util.Bitvec
module Ids = Softborg_util.Ids
module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Hive = Softborg_hive.Hive
module Knowledge = Softborg_hive.Knowledge
module Checkpoint = Softborg_hive.Checkpoint
module Protocol = Softborg_hive.Protocol
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let trace_of ?(pod = 1) ?(sched = Sched.Round_robin) prog inputs =
  let env = Env.make ~seed:7 ~inputs () in
  let r = Interp.run ~program:prog ~env ~sched () in
  Trace.of_result ~program_digest:(Ir.digest prog) ~pod ~fix_epoch:0 r

(* A synthetic trace with a chosen branch vector, carried on a real
   trace's chassis so every other field stays wire-legal. *)
let with_bits base ~pod bits =
  {
    base with
    Trace.trace_id = Ids.Trace_id.fresh ();
    pod;
    bits;
    n_decisions = Bitvec.length bits;
  }

let random_bits rng n =
  let bits = Bitvec.create () in
  for _ = 1 to n do
    Bitvec.push bits (Rng.bool rng)
  done;
  bits

let decode_record_exn ?caps ?basis ~program_digest s =
  match Wire.decode_record ?caps ?basis ~program_digest s with
  | Ok t -> t
  | Error e -> Alcotest.failf "decode_record failed: %a" Wire.pp_error e

(* ---- Record codec ------------------------------------------------------- *)

let test_record_roundtrip_full () =
  List.iter
    (fun (prog, inputs) ->
      let t = trace_of prog inputs in
      let s = Wire.encode_record t in
      checkb "full tag" true (s.[0] = '\x00');
      let t' = decode_record_exn ~program_digest:t.Trace.program_digest s in
      checkb "roundtrip equal" true (Trace.equal t t'))
    [
      (Corpus.fig2_write, [| 5 |]);
      (Corpus.parser, Corpus.parser_trigger);
      (Corpus.checksum, [| 200; 3 |]);
    ]

let test_record_roundtrip_delta () =
  let rng = Rng.create 42 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  for n = 0 to 80 do
    let basis = with_bits base ~pod:1 (random_bits rng (max n 1)) in
    let t = with_bits base ~pod:2 (random_bits rng n) in
    let s = Wire.encode_record ~basis t in
    (* Never worse: the delta candidate ships only when smaller. *)
    checkb "never larger than full" true
      (String.length s <= String.length (Wire.encode_record t));
    let t' = decode_record_exn ~basis ~program_digest:t.Trace.program_digest s in
    checkb "roundtrip equal" true (Trace.equal t t')
  done

let test_record_shared_prefix_shrinks () =
  (* The motivating case: a fleet running the same inputs produces
     near-identical branch vectors.  1024 shared bits with a 16-bit
     tail difference must collapse to a fraction of the full record. *)
  let rng = Rng.create 7 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  let bits = random_bits rng 1024 in
  let basis = with_bits base ~pod:1 bits in
  let tail = Bitvec.copy bits in
  for i = 1008 to 1023 do
    Bitvec.set tail i (not (Bitvec.get tail i))
  done;
  let t = with_bits base ~pod:2 tail in
  let full = Wire.encode_record t in
  let delta = Wire.encode_record ~basis t in
  checkb "delta tag" true (delta.[0] = '\x01');
  checkb
    (Printf.sprintf "delta at least 2x smaller (%d vs %d)" (String.length delta)
       (String.length full))
    true
    (2 * String.length delta <= String.length full);
  checkb "roundtrip equal" true
    (Trace.equal t (decode_record_exn ~basis ~program_digest:t.Trace.program_digest delta))

let test_record_foreign_basis_falls_back () =
  let t = trace_of Corpus.parser [| 1; 2; 3 |] in
  let foreign = trace_of Corpus.fig2_write [| 5 |] in
  let s = Wire.encode_record ~basis:foreign t in
  checkb "full despite basis" true (s.[0] = '\x00');
  checkb "decodes without basis" true
    (Trace.equal t (decode_record_exn ~program_digest:t.Trace.program_digest s))

let test_delta_without_basis_is_malformed () =
  let rng = Rng.create 9 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  let bits = random_bits rng 512 in
  let basis = with_bits base ~pod:1 bits in
  let t = with_bits base ~pod:2 (Bitvec.copy bits) in
  let delta = Wire.encode_record ~basis t in
  checkb "delta chosen" true (delta.[0] = '\x01');
  (match Wire.decode_record ~program_digest:t.Trace.program_digest delta with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "delta without basis decoded"
  | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e);
  (* A basis for the wrong program is as useless as none. *)
  let foreign = trace_of Corpus.fig2_write [| 5 |] in
  match Wire.decode_record ~basis:foreign ~program_digest:t.Trace.program_digest delta with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "delta against a foreign basis decoded"
  | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e

let test_record_truncations_total () =
  (* Every proper prefix of a valid record must decode to an error —
     never an exception, never a bogus Ok. *)
  let rng = Rng.create 11 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  let basis = with_bits base ~pod:1 (random_bits rng 256) in
  let t = with_bits base ~pod:2 (random_bits rng 256) in
  List.iter
    (fun s ->
      for len = 0 to String.length s - 1 do
        match
          Wire.decode_record ~basis ~program_digest:t.Trace.program_digest
            (String.sub s 0 len)
        with
        | Error _ -> ()
        | Ok t' ->
          (* A prefix that still decodes must decode to the same trace
             (trailing bytes it never read were dropped). *)
          checkb "prefix Ok only if equal" true (Trace.equal t t')
      done)
    [ Wire.encode_record t; Wire.encode_record ~basis t ]

let test_record_byte_fuzz_total () =
  (* Single-byte corruption at every offset: the decoder must return,
     not raise; Ok results must stay within the caps' budget. *)
  let rng = Rng.create 13 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  let basis = with_bits base ~pod:1 (random_bits rng 128) in
  let t = with_bits base ~pod:2 (random_bits rng 128) in
  let caps = Wire.default_caps in
  List.iter
    (fun s ->
      for i = 0 to String.length s - 1 do
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr ((Char.code s.[i] + 1 + (i * 37)) land 0xff));
        match
          Wire.decode_record ~caps ~basis ~program_digest:t.Trace.program_digest
            (Bytes.to_string b)
        with
        | Ok _ | Error _ -> ()
      done)
    [ Wire.encode_record t; Wire.encode_record ~basis t ]

let test_record_caps_enforced () =
  let rng = Rng.create 17 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  let t = with_bits base ~pod:2 (random_bits rng 2048) in
  let s = Wire.encode_record t in
  (match Wire.declared_bits s with
  | Ok n -> checki "declared bits" 2048 n
  | Error e -> Alcotest.failf "declared_bits failed: %a" Wire.pp_error e);
  let caps = { Wire.default_caps with Wire.max_branch_bits = 1024 } in
  (match Wire.decode_record ~caps ~program_digest:t.Trace.program_digest s with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "oversized bits decoded"
  | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e);
  let caps = { Wire.default_caps with Wire.max_message_bytes = 16 } in
  match Wire.decode_record ~caps ~program_digest:t.Trace.program_digest s with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "oversized frame decoded"
  | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e

(* ---- Batch protocol frames ---------------------------------------------- *)

let test_batch_protocol_roundtrip () =
  let t1 = trace_of Corpus.parser [| 1; 2; 3 |] in
  let t2 = trace_of ~pod:2 Corpus.parser [| 4; 5; 6 |] in
  let records = [ Wire.encode_record t1; Wire.encode_record ~basis:t1 t2 ] in
  let digest = Ir.digest Corpus.parser in
  let msg =
    Protocol.Batch_upload
      { program_digest = digest; basis_id = 0; basis_check = 0; records }
  in
  (match Protocol.decode (Protocol.encode msg) with
  | Ok (Protocol.Batch_upload { program_digest; records = records'; _ }) ->
    checks "digest" digest program_digest;
    checki "records" 2 (List.length records');
    checkb "records byte-equal" true (List.for_all2 String.equal records records')
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let payload = Wire.encode t1 in
  match
    Protocol.decode
      (Protocol.encode
         (Protocol.Basis_update { program_digest = digest; basis_id = 3; payload }))
  with
  | Ok (Protocol.Basis_update { basis_id; payload = payload'; _ }) ->
    checki "basis id" 3 basis_id;
    checkb "payload preserved" true (String.equal payload payload')
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_batch_record_count_capped () =
  let t = trace_of Corpus.parser [| 1; 2; 3 |] in
  let record = Wire.encode_record t in
  let msg n =
    Protocol.encode
      (Protocol.Batch_upload
         {
           program_digest = t.Trace.program_digest;
           basis_id = 0;
           basis_check = 0;
           records = List.init n (fun _ -> record);
         })
  in
  let caps = Wire.default_caps in
  (match Protocol.decode ~caps (msg 256) with
  | Ok (Protocol.Batch_upload _) -> ()
  | _ -> Alcotest.fail "a full batch should decode");
  match Protocol.decode ~caps (msg 257) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-long batch decoded"

(* ---- Frame-agnostic knowledge (the central invariant) ------------------- *)

let fleet_traces ?(n = 24) ?(prog = Corpus.parser) () =
  let rng = Rng.create 23 in
  List.init n (fun i ->
      let inputs = Array.init prog.Ir.n_inputs (fun _ -> Rng.int rng 40) in
      trace_of ~pod:(1 + (i mod 5)) prog inputs)

let knowledge_bytes hive = Checkpoint.encode (Hive.knowledge_list hive)

let make_hive ?(pool_size = 1) ?(announce = false) ?(prog = Corpus.parser) ?overload () =
  let sim = Sim.create () in
  let config =
    {
      (Hive.default_config Hive.Full) with
      Hive.pool_size;
      announce_basis = announce;
      overload;
    }
  in
  let hive = Hive.create ~config ~sim () in
  ignore (Hive.register_program hive prog);
  (sim, hive)

let inject_singles hive traces =
  List.iter
    (fun t ->
      Hive.inject hive ~slot:0 (Protocol.encode (Protocol.Trace_upload (Wire.encode t))))
    traces

(* Batch the traces [size] at a time, first record full, rest
   delta-encoded against it — the self-anchored frame shape. *)
let inject_batches ?(delta = true) hive ~size traces =
  let rec chunks = function
    | [] -> []
    | ts ->
      let rec take n = function
        | x :: rest when n > 0 ->
          let head, tail = take (n - 1) rest in
          (x :: head, tail)
        | rest -> ([], rest)
      in
      let head, tail = take size ts in
      head :: chunks tail
  in
  List.iter
    (fun chunk ->
      let records =
        match chunk with
        | [] -> []
        | first :: rest ->
          Wire.encode_record first
          :: List.map
               (fun t ->
                 if delta then Wire.encode_record ~basis:first t else Wire.encode_record t)
               rest
      in
      let digest = (List.hd chunk).Trace.program_digest in
      Hive.inject hive ~slot:0
        (Protocol.encode
           (Protocol.Batch_upload
              { program_digest = digest; basis_id = 0; basis_check = 0; records })))
    (chunks traces)

let test_knowledge_frame_agnostic () =
  let traces = fleet_traces () in
  let _, h_single = make_hive () in
  inject_singles h_single traces;
  let baseline = knowledge_bytes h_single in
  checkb "knowledge not empty" true (String.length baseline > 0);
  checki "all ingested" (List.length traces)
    (Hive.stats h_single).Hive.traces_received;
  List.iter
    (fun (label, size, delta) ->
      let _, h = make_hive () in
      inject_batches ~delta h ~size traces;
      checki (label ^ " ingested all") (List.length traces)
        (Hive.stats h).Hive.traces_received;
      checkb (label ^ " frames counted") true
        ((Hive.stats h).Hive.batch_frames_received > 0);
      checks (label ^ " knowledge byte-identical") baseline (knowledge_bytes h))
    [ ("batch-4 delta", 4, true); ("batch-4 full", 4, false); ("batch-7 delta", 7, true) ]

let test_knowledge_pool_agnostic () =
  let traces = fleet_traces () in
  let _, h1 = make_hive ~pool_size:1 () in
  inject_batches h1 ~size:6 traces;
  let baseline = knowledge_bytes h1 in
  List.iter
    (fun pool_size ->
      let _, h = make_hive ~pool_size () in
      inject_batches h ~size:6 traces;
      checks
        (Printf.sprintf "pool %d byte-identical" pool_size)
        baseline (knowledge_bytes h);
      Hive.shutdown h)
    [ 2; 4 ]

let test_announced_basis_batches () =
  (* The hive announces a basis after its first ingested trace; batches
     delta-encoded against that announced basis (by id + fingerprint)
     must land on the same knowledge as singles.  Checksum traces keep
     a constant step count, so the delta candidate genuinely wins. *)
  let traces = fleet_traces ~prog:Corpus.checksum () in
  let _, h = make_hive ~announce:true ~prog:Corpus.checksum () in
  inject_singles h [ List.hd traces ];
  Hive.announce_bases h;
  checki "one basis announced" 1 (Hive.stats h).Hive.basis_updates_sent;
  (* Reconstruct the pod's view of the announcement: the canonical
     payload is the re-encoding of the admitted trace. *)
  let payload = Wire.encode (List.hd traces) in
  let basis =
    match Wire.decode payload with Ok b -> b | Error _ -> Alcotest.fail "basis decode"
  in
  let check = Protocol.basis_fingerprint payload in
  let rest = List.tl traces in
  let rec chunks n = function
    | [] -> []
    | ts ->
      let rec take k = function
        | x :: r when k > 0 ->
          let h, t = take (k - 1) r in
          (x :: h, t)
        | r -> ([], r)
      in
      let head, tail = take n ts in
      head :: chunks n tail
  in
  List.iter
    (fun chunk ->
      let records = List.map (fun t -> Wire.encode_record ~basis t) chunk in
      checkb "some records delta-encoded" true
        (List.exists (fun r -> r.[0] = '\x01') records);
      Hive.inject h ~slot:0
        (Protocol.encode
           (Protocol.Batch_upload
              {
                program_digest = basis.Trace.program_digest;
                basis_id = 1;
                basis_check = check;
                records;
              })))
    (chunks 5 rest);
  checki "all ingested" (List.length traces) (Hive.stats h).Hive.traces_received;
  (* Against the reference: singles into a plain hive. *)
  let _, h_ref = make_hive ~prog:Corpus.checksum () in
  inject_singles h_ref traces;
  checks "announced-basis knowledge byte-identical" (knowledge_bytes h_ref)
    (knowledge_bytes h);
  (* A stale fingerprint must reject the whole batch, not corrupt. *)
  let before = (Hive.stats h).Hive.traces_received in
  Hive.inject h ~slot:0
    (Protocol.encode
       (Protocol.Batch_upload
          {
            program_digest = basis.Trace.program_digest;
            basis_id = 1;
            basis_check = check + 1;
            records = [ Wire.encode_record ~basis (List.hd rest) ];
          }));
  checki "stale-basis batch rejected" before (Hive.stats h).Hive.traces_received

let test_batch_total_bits_budget () =
  (* Per-record bits pass the per-frame cap, but the batch total is
     held to the same budget — batching must not smuggle volume past
     quarantine accounting. *)
  let rng = Rng.create 29 in
  let base = trace_of Corpus.parser [| 1; 2; 3 |] in
  let overload = { Hive.default_overload_config with Hive.service_interval = 0.0 } in
  let caps = overload.Hive.caps in
  let per_record = caps.Wire.max_branch_bits / 2 in
  let n_records = (caps.Wire.max_batch_total_bits / per_record) + 2 in
  let records =
    List.init n_records (fun i ->
        Wire.encode_record (with_bits base ~pod:(1 + i) (random_bits rng per_record)))
  in
  let sim = Sim.create () in
  let config =
    { (Hive.default_config Hive.Full) with Hive.overload = Some overload }
  in
  let hive = Hive.create ~config ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  Hive.inject hive ~slot:0
    (Protocol.encode
       (Protocol.Batch_upload
          {
            program_digest = base.Trace.program_digest;
            basis_id = 0;
            basis_check = 0;
            records;
          }));
  Sim.run sim;
  let s = Hive.stats hive in
  checki "budget-violating batch quarantined" 1 s.Hive.quarantined_frames;
  checki "nothing ingested from it" 0 s.Hive.traces_received

(* ---- Pod-side batching over the wire ------------------------------------ *)

let fleet_sim ?(pod_config = Pod.default_config) ?(announce = false)
    ?(program = Corpus.parser) () =
  let sim = Sim.create () in
  let hive_config =
    { (Hive.default_config Hive.Full) with Hive.announce_basis = announce }
  in
  let hive = Hive.create ~config:hive_config ~sim () in
  ignore (Hive.register_program hive program);
  let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 7) () in
  Hive.attach_pod hive hive_end;
  let config =
    {
      pod_config with
      Pod.workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
      fault_probability = 0.0;
    }
  in
  let pod =
    Pod.create ~config ~sim ~rng:(Rng.create 11) ~program ~endpoint:pod_end ()
  in
  (sim, hive, pod)

let test_pod_batches_and_deltas () =
  let pod_config =
    { Pod.default_config with Pod.upload_batch = 4; delta_encode = true }
  in
  let sim, hive, pod = fleet_sim ~pod_config ~announce:true ~program:Corpus.checksum () in
  (* First sessions seed the hive's basis candidate; the tick announces. *)
  for _ = 1 to 4 do
    Pod.run_session pod
  done;
  Sim.run sim;
  Hive.tick hive;
  Sim.run sim;
  checkb "basis announced" true ((Hive.stats hive).Hive.basis_updates_sent >= 1);
  for _ = 1 to 12 do
    Pod.run_session pod
  done;
  Sim.run sim;
  let m = Pod.metrics pod in
  let s = Hive.stats hive in
  checkb "pod sent batches" true (m.Pod.batches_sent >= 1);
  checkb "pod delta-encoded records" true (m.Pod.delta_records >= 1);
  checkb "hive decoded batch frames" true (s.Hive.batch_frames_received >= 1);
  checki "every trace arrived" 16 s.Hive.traces_received;
  checki "records add up" 16 s.Hive.batch_records_received

let test_pod_default_config_sends_singles () =
  (* The knobs default off: no batch frames, no deltas, the legacy
     one-frame-per-trace path. *)
  let sim, hive, pod = fleet_sim () in
  for _ = 1 to 6 do
    Pod.run_session pod
  done;
  Sim.run sim;
  let m = Pod.metrics pod in
  let s = Hive.stats hive in
  checki "no batches" 0 m.Pod.batches_sent;
  checki "no deltas" 0 m.Pod.delta_records;
  checki "no batch frames at the hive" 0 s.Hive.batch_frames_received;
  checki "singles arrived" 6 s.Hive.traces_received

let test_dead_batch_counts_every_record () =
  (* A batch frame the transport abandons loses every trace it
     carried; the dead-letter counter must say so. *)
  let sim = Sim.create () in
  let tconfig =
    {
      Transport.default_config with
      Transport.link =
        { Link.drop_probability = 1.0; mean_latency = 0.01; min_latency = 0.001 };
      retry_timeout = 0.05;
      max_retries = 1;
    }
  in
  let pod_end, _hive_end = Transport.endpoint_pair ~config:tconfig ~sim ~rng:(Rng.create 5) () in
  let config =
    {
      Pod.default_config with
      Pod.upload_batch = 4;
      batch_linger = 1000.0;
      workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
      fault_probability = 0.0;
    }
  in
  let pod =
    Pod.create ~config ~sim ~rng:(Rng.create 11) ~program:Corpus.parser ~endpoint:pod_end ()
  in
  for _ = 1 to 4 do
    Pod.run_session pod
  done;
  Sim.run sim;
  let m = Pod.metrics pod in
  checki "one batch flushed" 1 m.Pod.batches_sent;
  checki "all four traces dead-lettered" 4 m.Pod.dead_letters

let () =
  Alcotest.run "fleet"
    [
      ( "record-codec",
        [
          Alcotest.test_case "full roundtrip" `Quick test_record_roundtrip_full;
          Alcotest.test_case "delta roundtrip" `Quick test_record_roundtrip_delta;
          Alcotest.test_case "shared prefix shrinks" `Quick test_record_shared_prefix_shrinks;
          Alcotest.test_case "foreign basis falls back" `Quick
            test_record_foreign_basis_falls_back;
          Alcotest.test_case "delta needs its basis" `Quick
            test_delta_without_basis_is_malformed;
          Alcotest.test_case "truncations are total" `Quick test_record_truncations_total;
          Alcotest.test_case "byte fuzz is total" `Quick test_record_byte_fuzz_total;
          Alcotest.test_case "caps enforced" `Quick test_record_caps_enforced;
        ] );
      ( "batch-frames",
        [
          Alcotest.test_case "protocol roundtrip" `Quick test_batch_protocol_roundtrip;
          Alcotest.test_case "record count capped" `Quick test_batch_record_count_capped;
          Alcotest.test_case "total-bits budget" `Quick test_batch_total_bits_budget;
        ] );
      ( "knowledge-identity",
        [
          Alcotest.test_case "frame agnostic" `Quick test_knowledge_frame_agnostic;
          Alcotest.test_case "pool agnostic" `Quick test_knowledge_pool_agnostic;
          Alcotest.test_case "announced basis" `Quick test_announced_basis_batches;
        ] );
      ( "pod-batching",
        [
          Alcotest.test_case "batches and deltas" `Quick test_pod_batches_and_deltas;
          Alcotest.test_case "defaults send singles" `Quick
            test_pod_default_config_sends_singles;
          Alcotest.test_case "dead batch counts records" `Quick
            test_dead_batch_counts_every_record;
        ] );
    ]
