(* Unit and property tests for the softborg_util substrate. *)

module Bitvec = Softborg_util.Bitvec
module Rng = Softborg_util.Rng
module Stats = Softborg_util.Stats
module Codec = Softborg_util.Codec
module Tabular = Softborg_util.Tabular
module Ids = Softborg_util.Ids
module Lru = Softborg_util.Lru

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* ---- Bitvec ---------------------------------------------------- *)

let test_bitvec_empty () =
  let v = Bitvec.create () in
  checki "empty length" 0 (Bitvec.length v);
  checki "empty popcount" 0 (Bitvec.pop_count v);
  check Alcotest.string "empty to_string" "" (Bitvec.to_string v)

let test_bitvec_push_get () =
  let v = Bitvec.create () in
  Bitvec.push v true;
  Bitvec.push v false;
  Bitvec.push v true;
  checki "length" 3 (Bitvec.length v);
  checkb "bit 0" true (Bitvec.get v 0);
  checkb "bit 1" false (Bitvec.get v 1);
  checkb "bit 2" true (Bitvec.get v 2);
  checki "popcount" 2 (Bitvec.pop_count v)

let test_bitvec_growth () =
  let v = Bitvec.create () in
  for i = 0 to 999 do
    Bitvec.push v (i mod 3 = 0)
  done;
  checki "length after 1000 pushes" 1000 (Bitvec.length v);
  checki "popcount" 334 (Bitvec.pop_count v);
  checkb "bit 999" true (Bitvec.get v 999)

let test_bitvec_set () =
  let v = Bitvec.of_bools [ false; false; false ] in
  Bitvec.set v 1 true;
  checkb "set bit" true (Bitvec.get v 1);
  checkb "neighbors untouched" false (Bitvec.get v 0);
  Bitvec.set v 1 false;
  checki "popcount after unset" 0 (Bitvec.pop_count v)

let test_bitvec_out_of_range () =
  let v = Bitvec.of_bools [ true ] in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec.get: index -1 out of [0,1)") (fun () ->
      ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 1" (Invalid_argument "Bitvec.get: index 1 out of [0,1)") (fun () ->
      ignore (Bitvec.get v 1))

let test_bitvec_string_roundtrip () =
  let s = "011010011101" in
  check Alcotest.string "of_string/to_string" s (Bitvec.to_string (Bitvec.of_string s))

let test_bitvec_prefix () =
  let a = Bitvec.of_string "0110" in
  let b = Bitvec.of_string "0111" in
  checki "common prefix" 3 (Bitvec.common_prefix a b);
  checkb "is_prefix" true (Bitvec.is_prefix (Bitvec.of_string "011") a);
  checkb "not prefix" false (Bitvec.is_prefix (Bitvec.of_string "010") a);
  checkb "empty is prefix" true (Bitvec.is_prefix (Bitvec.create ()) a)

let test_bitvec_truncate () =
  let v = Bitvec.of_string "110110" in
  Bitvec.truncate v 3;
  check Alcotest.string "after truncate" "110" (Bitvec.to_string v);
  Bitvec.push v true;
  check Alcotest.string "push after truncate" "1101" (Bitvec.to_string v)

let test_bitvec_append () =
  let a = Bitvec.of_string "10" in
  let b = Bitvec.of_string "011" in
  Bitvec.append a b;
  check Alcotest.string "append" "10011" (Bitvec.to_string a);
  check Alcotest.string "src untouched" "011" (Bitvec.to_string b)

let test_bitvec_compare () =
  let v s = Bitvec.of_string s in
  checki "equal" 0 (Bitvec.compare (v "01") (v "01"));
  checkb "lt" true (Bitvec.compare (v "0") (v "01") < 0);
  checkb "gt" true (Bitvec.compare (v "1") (v "01") > 0)

let prop_bitvec_bytes_roundtrip =
  QCheck.Test.make ~name:"bitvec bytes roundtrip" ~count:300
    QCheck.(list bool)
    (fun bools ->
      let v = Bitvec.of_bools bools in
      let back = Bitvec.of_bytes (Bitvec.to_bytes v) (Bitvec.length v) in
      Bitvec.equal v back)

let prop_bitvec_hash_stable =
  QCheck.Test.make ~name:"equal bitvecs hash equally" ~count:200
    QCheck.(list bool)
    (fun bools ->
      let a = Bitvec.of_bools bools in
      let b = Bitvec.of_bools bools in
      Bitvec.hash a = Bitvec.hash b)

let prop_bitvec_fold_count =
  QCheck.Test.make ~name:"fold counts set bits like pop_count" ~count:200
    QCheck.(list bool)
    (fun bools ->
      let v = Bitvec.of_bools bools in
      Bitvec.fold (fun acc b -> if b then acc + 1 else acc) 0 v = Bitvec.pop_count v)

(* ---- Rng -------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int parent 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int child 1_000_000) in
  checkb "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    checkb "in range" true (x >= 0 && x < 7)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng (-3) 3 in
    checkb "in range" true (x >= -3 && x <= 3)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    checkb "p=0 never" false (Rng.bernoulli rng 0.0);
    checkb "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 6 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Rng.zipf rng ~n:10 ~s:1.2 in
    counts.(i) <- counts.(i) + 1
  done;
  checkb "rank 0 beats rank 9" true (counts.(0) > counts.(9));
  checkb "rank 0 dominates" true (counts.(0) > 2000)

let test_rng_geometric_mean () =
  let rng = Rng.create 8 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.1
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* Expected mean of failures before success = (1-p)/p = 9. *)
  checkb "geometric mean near 9" true (mean > 8.0 && mean < 10.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_weighted_choice () =
  let rng = Rng.create 10 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Rng.weighted_choice rng [| ("heavy", 9.0); ("light", 1.0) |] = "heavy" then incr heavy
  done;
  checkb "weight respected" true (!heavy > 800)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 11 in
  let sample = Rng.sample_without_replacement rng 5 (Array.init 10 (fun i -> i)) in
  checki "sample size" 5 (Array.length sample);
  let distinct = Array.to_list sample |> List.sort_uniq Int.compare |> List.length in
  checki "all distinct" 5 distinct

(* ---- Stats ------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  checki "count" 4 s.Stats.count;
  checkf "mean" 2.5 s.Stats.mean;
  checkf "min" 1.0 s.Stats.min;
  checkf "max" 4.0 s.Stats.max;
  checkf "variance" 1.25 s.Stats.variance

let test_stats_empty_summary () =
  let s = Stats.summarize [] in
  checki "count" 0 s.Stats.count;
  checkf "mean" 0.0 s.Stats.mean

let test_stats_online_matches_batch () =
  let xs = [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ] in
  let online = Stats.Online.create () in
  List.iter (Stats.Online.add online) xs;
  let batch = Stats.summarize xs in
  checkf "mean" batch.Stats.mean (Stats.Online.mean online);
  Alcotest.check (Alcotest.float 1e-9) "variance" batch.Stats.variance
    (Stats.Online.variance online)

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  checkf "p0" 10.0 (Stats.percentile xs 0.0);
  checkf "p100" 40.0 (Stats.percentile xs 100.0);
  checkf "median" 25.0 (Stats.median xs)

let test_stats_geometric_mean () =
  checkf "gm of 1,100" 10.0 (Stats.geometric_mean [ 1.0; 100.0 ])

let test_stats_entropy () =
  checkf "uniform 4 outcomes = 2 bits" 2.0 (Stats.entropy_bits [ 1.0; 1.0; 1.0; 1.0 ]);
  checkf "point mass = 0 bits" 0.0 (Stats.entropy_bits [ 5.0; 0.0 ])

let test_stats_pearson () =
  let xs = [ 1.0; 2.0; 3.0 ] in
  checkf "perfect correlation" 1.0 (Stats.pearson xs xs);
  checkf "perfect anticorrelation" (-1.0) (Stats.pearson xs (List.rev xs));
  checkf "constant gives 0" 0.0 (Stats.pearson xs [ 2.0; 2.0; 2.0 ])

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  checki "bucket count" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 h in
  checki "all points bucketed" 4 total

(* ---- Codec ------------------------------------------------------ *)

let roundtrip_int n =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w n;
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Codec.Reader.varint r

let test_codec_varint () =
  List.iter
    (fun n -> checki (Printf.sprintf "varint %d" n) n (roundtrip_int n))
    [ 0; 1; 127; 128; 300; 16_383; 16_384; 1_000_000; max_int ]

let test_codec_zigzag () =
  List.iter
    (fun n ->
      let w = Codec.Writer.create () in
      Codec.Writer.zigzag w n;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      checki (Printf.sprintf "zigzag %d" n) n (Codec.Reader.zigzag r))
    [ 0; -1; 1; -64; 64; -1_000_000; 1_000_000; min_int + 1; max_int ]

let test_codec_truncated () =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w 300;
  let partial = String.sub (Codec.Writer.contents w) 0 1 in
  let r = Codec.Reader.of_string partial in
  Alcotest.check_raises "truncated varint" Codec.Truncated (fun () -> ignore (Codec.Reader.varint r))

let test_codec_mixed_payload () =
  let w = Codec.Writer.create () in
  Codec.Writer.bool w true;
  Codec.Writer.float w 3.25;
  Codec.Writer.bytes w "hello";
  Codec.Writer.list w (Codec.Writer.varint w) [ 1; 2; 3 ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  checkb "bool" true (Codec.Reader.bool r);
  checkf "float" 3.25 (Codec.Reader.float r);
  check Alcotest.string "bytes" "hello" (Codec.Reader.bytes r);
  check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3 ] (Codec.Reader.list r Codec.Reader.varint);
  checki "fully consumed" 0 (Codec.Reader.remaining r)

let prop_codec_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(map abs int)
    (fun n -> roundtrip_int n = n)

let prop_codec_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:500 QCheck.int (fun n ->
      QCheck.assume (n > min_int);
      let w = Codec.Writer.create () in
      Codec.Writer.zigzag w n;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      Codec.Reader.zigzag r = n)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 QCheck.string (fun s ->
      let w = Codec.Writer.create () in
      Codec.Writer.bytes w s;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      String.equal (Codec.Reader.bytes r) s)

(* ---- Tabular ----------------------------------------------------- *)

let test_tabular_render () =
  let cols = [ Tabular.column "name"; Tabular.column ~align:Tabular.Right "n" ] in
  let out = Tabular.render cols [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  checki "line count" 4 (List.length lines);
  List.iter
    (fun line -> checki "equal width" (String.length (List.hd lines)) (String.length line))
    lines

let test_tabular_pads_short_rows () =
  let cols = [ Tabular.column "a"; Tabular.column "b" ] in
  let out = Tabular.render cols [ [ "x" ] ] in
  checkb "renders" true (String.length out > 0)

let test_tabular_rejects_wide_rows () =
  let cols = [ Tabular.column "a" ] in
  Alcotest.check_raises "wide row" (Invalid_argument "Tabular.render: row wider than header")
    (fun () -> ignore (Tabular.render cols [ [ "x"; "y" ] ]))

let test_tabular_formats () =
  check Alcotest.string "float" "3.14" (Tabular.fmt_float ~decimals:2 3.14159);
  check Alcotest.string "nan" "-" (Tabular.fmt_float Float.nan);
  check Alcotest.string "pct" "12.3%" (Tabular.fmt_pct 0.123);
  check Alcotest.string "ratio" "9.8x" (Tabular.fmt_ratio 9.81)

(* ---- Ids --------------------------------------------------------- *)

let test_ids_fresh_distinct () =
  let a = Ids.Pod_id.fresh () in
  let b = Ids.Pod_id.fresh () in
  checkb "fresh ids differ" false (Ids.Pod_id.equal a b)

let test_ids_roundtrip () =
  let id = Ids.Trace_id.of_int 42 in
  checki "roundtrip" 42 (Ids.Trace_id.to_int id);
  checki "compare equal" 0 (Ids.Trace_id.compare id (Ids.Trace_id.of_int 42))

(* ---- Lru --------------------------------------------------------- *)

let test_lru_evicts_least_recent () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check Alcotest.(option int) "a present" (Some 1) (Lru.find c "a");
  (* "a" was just promoted, so inserting "c" evicts "b". *)
  Lru.add c "c" 3;
  checki "still at capacity" 2 (Lru.length c);
  check Alcotest.(option int) "b evicted" None (Lru.find c "b");
  check Alcotest.(option int) "a kept" (Some 1) (Lru.find c "a");
  check Alcotest.(option int) "c kept" (Some 3) (Lru.find c "c")

let test_lru_overwrite_promotes () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  (* "a" is most recent; "b" goes on the next insertion. *)
  Lru.add c "c" 3;
  check Alcotest.(option int) "overwritten value" (Some 10) (Lru.find c "a");
  check Alcotest.(option int) "b evicted" None (Lru.find c "b")

let test_lru_remove_and_clear () =
  let c = Lru.create 4 in
  List.iter (fun (k, v) -> Lru.add c k v) [ ("a", 1); ("b", 2); ("c", 3) ];
  Lru.remove c "b";
  checki "length after remove" 2 (Lru.length c);
  checkb "mem after remove" false (Lru.mem c "b");
  Lru.clear c;
  checki "empty after clear" 0 (Lru.length c);
  check Alcotest.(option int) "find after clear" None (Lru.find c "a");
  (* The recency list must be reusable after clear. *)
  Lru.add c "x" 9;
  check Alcotest.(option int) "usable after clear" (Some 9) (Lru.find c "x")

let test_lru_counters_and_capacity_one () =
  let c = Lru.create 1 in
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be at least 1") (fun () ->
      ignore (Lru.create 0));
  Lru.add c 1 "one";
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  Lru.add c 2 "two";
  checki "capacity one holds one" 1 (Lru.length c);
  checkb "old key gone" false (Lru.mem c 1);
  checki "hits" 1 (Lru.hits c);
  checki "misses" 1 (Lru.misses c)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity and keeps recent keys" ~count:300
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 15) int)))
    (fun (cap, ops) ->
      let c = Lru.create cap in
      List.iter (fun (k, v) -> Lru.add c k v) ops;
      Lru.length c <= cap
      &&
      (* The most recently added key is always retrievable. *)
      match List.rev ops with
      | [] -> true
      | (k, _) :: _ -> Lru.mem c k)

(* ---- Pool ------------------------------------------------------------- *)

module Pool = Softborg_util.Pool

let with_pool size f =
  let pool = Pool.create ~size in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i - 50) in
  let f x = (x * x) + (3 * x) in
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "pool size %d preserves order and values" size)
            (List.map f xs) (Pool.map pool f xs)))
    [ 1; 2; 4 ]

let test_pool_small_inputs () =
  with_pool 4 (fun pool ->
      Alcotest.(check (list int)) "empty list" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map pool succ [ 7 ]))

let test_pool_exception_propagates () =
  with_pool 3 (fun pool ->
      Alcotest.check_raises "first failing element's exception re-raised"
        (Invalid_argument "boom:2") (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x >= 2 then invalid_arg (Printf.sprintf "boom:%d" x) else x)
               [ 0; 1; 2; 3; 4 ])));
  (* The pool must survive a failed batch and serve the next one. *)
  with_pool 3 (fun pool ->
      (try ignore (Pool.map pool (fun _ -> failwith "x") [ 1; 2; 3 ]) with _ -> ());
      Alcotest.(check (list int)) "pool usable after failure" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_inert_and_idempotent_shutdown () =
  let pool = Pool.create ~size:1 in
  checki "inert pool size" 1 (Pool.size pool);
  Alcotest.(check (list int)) "inert pool maps inline" [ 1; 2 ] (Pool.map pool succ [ 0; 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  let pool = Pool.create ~size:2 in
  checki "real pool size" 2 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool

let test_race_cell () =
  let cell = Pool.Race_cell.create () in
  checki "fresh cell" max_int (Pool.Race_cell.current cell);
  checkb "first proposal wins" true (Pool.Race_cell.propose cell 10);
  checki "after first" 10 (Pool.Race_cell.current cell);
  checkb "worse rank rejected" false (Pool.Race_cell.propose cell 12);
  checkb "equal rank rejected" false (Pool.Race_cell.propose cell 10);
  checki "unchanged" 10 (Pool.Race_cell.current cell);
  checkb "better rank accepted" true (Pool.Race_cell.propose cell 3);
  checki "after improvement" 3 (Pool.Race_cell.current cell)

let test_race_cell_concurrent () =
  (* Concurrent CAS-min: the minimum of all proposals must win no
     matter how the domains interleave. *)
  let cell = Pool.Race_cell.create () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to 99 do
              ignore (Pool.Race_cell.propose cell ((100 * (d + 1)) - k))
            done))
  in
  List.iter Domain.join domains;
  checki "min proposal survives" 1 (Pool.Race_cell.current cell)

let prop_varint_len_matches_writer =
  QCheck.Test.make ~name:"varint_len matches Writer.varint output size" ~count:500
    QCheck.(map abs int)
    (fun n ->
      let w = Codec.Writer.create () in
      Codec.Writer.varint w n;
      Codec.varint_len n = String.length (Codec.Writer.contents w))

let test_varint_len_cases () =
  (* Boundary values around each 7-bit payload step. *)
  List.iter
    (fun (n, expect) -> checki (Printf.sprintf "varint_len %d" n) expect (Codec.varint_len n))
    [ (0, 1); (127, 1); (128, 2); (16_383, 2); (16_384, 3); (max_int, 9) ];
  Alcotest.check_raises "negative rejected" (Invalid_argument "Codec.varint_len: negative")
    (fun () -> ignore (Codec.varint_len (-1)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_util"
    [
      ( "bitvec",
        [
          Alcotest.test_case "empty" `Quick test_bitvec_empty;
          Alcotest.test_case "push/get" `Quick test_bitvec_push_get;
          Alcotest.test_case "growth" `Quick test_bitvec_growth;
          Alcotest.test_case "set" `Quick test_bitvec_set;
          Alcotest.test_case "out of range" `Quick test_bitvec_out_of_range;
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "prefix" `Quick test_bitvec_prefix;
          Alcotest.test_case "truncate" `Quick test_bitvec_truncate;
          Alcotest.test_case "append" `Quick test_bitvec_append;
          Alcotest.test_case "compare" `Quick test_bitvec_compare;
          q prop_bitvec_bytes_roundtrip;
          q prop_bitvec_hash_stable;
          q prop_bitvec_fold_count;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted_choice;
          Alcotest.test_case "sample w/o replacement" `Quick test_rng_sample_without_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty summary" `Quick test_stats_empty_summary;
          Alcotest.test_case "online matches batch" `Quick test_stats_online_matches_batch;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "entropy" `Quick test_stats_entropy;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "codec",
        [
          Alcotest.test_case "varint cases" `Quick test_codec_varint;
          Alcotest.test_case "varint_len cases" `Quick test_varint_len_cases;
          q prop_varint_len_matches_writer;
          Alcotest.test_case "zigzag cases" `Quick test_codec_zigzag;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "mixed payload" `Quick test_codec_mixed_payload;
          q prop_codec_varint_roundtrip;
          q prop_codec_zigzag_roundtrip;
          q prop_codec_string_roundtrip;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "pads short rows" `Quick test_tabular_pads_short_rows;
          Alcotest.test_case "rejects wide rows" `Quick test_tabular_rejects_wide_rows;
          Alcotest.test_case "formats" `Quick test_tabular_formats;
        ] );
      ( "ids",
        [
          Alcotest.test_case "fresh distinct" `Quick test_ids_fresh_distinct;
          Alcotest.test_case "roundtrip" `Quick test_ids_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "evicts least recent" `Quick test_lru_evicts_least_recent;
          Alcotest.test_case "overwrite promotes" `Quick test_lru_overwrite_promotes;
          Alcotest.test_case "remove and clear" `Quick test_lru_remove_and_clear;
          Alcotest.test_case "counters and capacity one" `Quick
            test_lru_counters_and_capacity_one;
          q prop_lru_never_exceeds_capacity;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick test_pool_map_matches_list_map;
          Alcotest.test_case "small inputs" `Quick test_pool_small_inputs;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "inert + idempotent shutdown" `Quick
            test_pool_inert_and_idempotent_shutdown;
          Alcotest.test_case "race cell monotone min" `Quick test_race_cell;
          Alcotest.test_case "race cell concurrent min" `Quick test_race_cell_concurrent;
        ] );
    ]
