(* Tests for the versioned bug-benchmark corpus and the repair-scoring
   harness: codec round-trips and digest stability over generated
   instances, seed determinism at >= 500 instances, the Fixgen
   false-positive guard on fixed variants, and tree/vm engine
   equivalence over every family (trigger recipes included). *)

module Rng = Softborg_util.Rng
module Codec = Softborg_util.Codec
module Bitvec = Softborg_util.Bitvec
module Ir = Softborg_prog.Ir
module Ir_codec = Softborg_prog.Ir_codec
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Engine = Softborg_exec.Engine
module Outcome = Softborg_exec.Outcome
module Corpus_bench = Softborg_corpus.Corpus_bench
module Fixgen = Softborg_hive.Fixgen
module Repair_score = Softborg_hive.Repair_score

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* A light scoring config so the harness-driving tests stay quick. *)
let quick_config =
  { Repair_score.default_config with Repair_score.runs = 40; trigger_every = 5 }

(* The standard three-seed corpus, shared across tests (generation
   re-certifies every instance under both engines). *)
let corpus3 = lazy (Corpus_bench.corpus ())

let program_structurally_equal (a : Ir.t) (b : Ir.t) =
  a.Ir.name = b.Ir.name && a.Ir.globals = b.Ir.globals && a.Ir.n_inputs = b.Ir.n_inputs
  && a.Ir.n_locks = b.Ir.n_locks && a.Ir.threads = b.Ir.threads

(* Structural deep-copy with fresh strings: digests must not depend on
   value sharing (same oracle as test_prog's rebuild property). *)
let rebuild_program (p : Ir.t) : Ir.t =
  let s x = String.init (String.length x) (String.get x) in
  let var = function Ir.Global g -> Ir.Global (s g) | Ir.Local l -> Ir.Local (s l) in
  let rec expr = function
    | Ir.Const c -> Ir.Const c
    | Ir.Var v -> Ir.Var (var v)
    | Ir.Input i -> Ir.Input i
    | Ir.Unop (op, e) -> Ir.Unop (op, expr e)
    | Ir.Binop (op, a, b) -> Ir.Binop (op, expr a, expr b)
  in
  let instr = function
    | Ir.Assign (v, e) -> Ir.Assign (var v, expr e)
    | Ir.Branch { cond; if_true; if_false } -> Ir.Branch { cond = expr cond; if_true; if_false }
    | Ir.Jump t -> Ir.Jump t
    | Ir.Syscall { kind; dst } -> Ir.Syscall { kind; dst = var dst }
    | Ir.Lock l -> Ir.Lock l
    | Ir.Unlock l -> Ir.Unlock l
    | Ir.Assert { cond; message } -> Ir.Assert { cond = expr cond; message = s message }
    | Ir.Yield -> Ir.Yield
    | Ir.Halt -> Ir.Halt
  in
  {
    Ir.name = s p.Ir.name;
    globals = List.map s p.Ir.globals;
    n_inputs = p.Ir.n_inputs;
    n_locks = p.Ir.n_locks;
    threads = Array.map (Array.map instr) p.Ir.threads;
  }

let program_bytes p =
  let w = Codec.Writer.create () in
  Ir_codec.write_program w p;
  Codec.Writer.contents w

let instance_programs (i : Corpus_bench.instance) =
  [ ("buggy", i.Corpus_bench.buggy); ("fixed", i.Corpus_bench.fixed) ]

(* ---- Satellite 1: codec round-trip + digest stability ------------- *)

let test_codec_roundtrip_and_digest_stable () =
  List.iter
    (fun (inst : Corpus_bench.instance) ->
      List.iter
        (fun (tag, prog) ->
          let label = Printf.sprintf "%s %s" inst.Corpus_bench.name tag in
          let decoded = Ir_codec.read_program (Codec.Reader.of_string (program_bytes prog)) in
          checkb (label ^ " round-trips") true (program_structurally_equal prog decoded);
          checks (label ^ " digest survives codec") (Ir.digest prog) (Ir.digest decoded);
          checks (label ^ " digest rebuild-stable") (Ir.digest prog)
            (Ir.digest (rebuild_program prog)))
        (instance_programs inst))
    (Lazy.force corpus3)

(* ---- Satellite 2: seed determinism, buggy <> fixed, >= 500 -------- *)

let test_seed_determinism_500 () =
  let seeds = List.init 85 (fun i -> i + 1) in
  let a = Corpus_bench.corpus ~seeds () in
  let b = Corpus_bench.corpus ~seeds () in
  checki "instance count" (List.length Corpus_bench.families * List.length seeds)
    (List.length a);
  checkb "at least 500 instances" true (List.length a >= 500);
  List.iter2
    (fun (x : Corpus_bench.instance) (y : Corpus_bench.instance) ->
      let label = x.Corpus_bench.name in
      checks (label ^ " name") x.Corpus_bench.name y.Corpus_bench.name;
      checki (label ^ " version") x.Corpus_bench.version y.Corpus_bench.version;
      (* Byte-identical program pairs, not just equal digests. *)
      checks (label ^ " buggy bytes")
        (program_bytes x.Corpus_bench.buggy)
        (program_bytes y.Corpus_bench.buggy);
      checks (label ^ " fixed bytes")
        (program_bytes x.Corpus_bench.fixed)
        (program_bytes y.Corpus_bench.fixed);
      checkb (label ^ " trigger inputs") true
        (x.Corpus_bench.trigger_inputs = y.Corpus_bench.trigger_inputs);
      checkb (label ^ " benign inputs") true
        (x.Corpus_bench.benign_inputs = y.Corpus_bench.benign_inputs);
      checkb (label ^ " fault plan") true (x.Corpus_bench.fault_plan = y.Corpus_bench.fault_plan);
      checkb (label ^ " schedule hint") true
        (x.Corpus_bench.schedule_hint = y.Corpus_bench.schedule_hint);
      checkb (label ^ " bug sites") true (x.Corpus_bench.bug_sites = y.Corpus_bench.bug_sites);
      checkb (label ^ " trigger path") true
        (x.Corpus_bench.trigger_path = y.Corpus_bench.trigger_path);
      checkb (label ^ " bug locks") true (x.Corpus_bench.bug_locks = y.Corpus_bench.bug_locks);
      (* The versioned pair really is a pair: buggy and fixed are
         structurally distinct programs. *)
      checkb (label ^ " buggy <> fixed") false
        (Ir.digest x.Corpus_bench.buggy = Ir.digest x.Corpus_bench.fixed))
    a b

(* ---- Satellite 3: Fixgen false positives on fixed variants -------- *)

let test_fixgen_no_false_positives () =
  List.iter
    (fun (inst : Corpus_bench.instance) ->
      let fixes = Repair_score.fixed_variant_fixes ~config:quick_config inst in
      checki (inst.Corpus_bench.name ^ " fixes proposed on fixed variant") 0
        (List.length fixes))
    (Lazy.force corpus3)

(* ---- Satellite 4: tree/vm equivalence over every family ----------- *)

let results_equal (a : Interp.result) (b : Interp.result) =
  a.Interp.outcome = b.Interp.outcome
  && Bitvec.equal a.Interp.bits b.Interp.bits
  && a.Interp.full_path = b.Interp.full_path
  && a.Interp.schedule = b.Interp.schedule
  && a.Interp.syscalls = b.Interp.syscalls
  && a.Interp.lock_events = b.Interp.lock_events
  && a.Interp.steps = b.Interp.steps

let test_engine_equivalence () =
  let case = ref 0 in
  List.iter
    (fun (inst : Corpus_bench.instance) ->
      List.iter
        (fun (tag, program) ->
          incr case;
          let run ~engine ~inputs ~fault_plan ~sched =
            Engine.run ~engine ~program
              ~env:(Env.make ~fault_plan ~seed:(17 + !case) ~inputs ())
              ~sched ()
          in
          let check label ~inputs ~fault_plan ~sched_of =
            let tree = run ~engine:Engine.Tree ~inputs ~fault_plan ~sched:(sched_of ()) in
            let vm = run ~engine:Engine.Vm ~inputs ~fault_plan ~sched:(sched_of ()) in
            checkb
              (Printf.sprintf "%s %s %s tree=vm" inst.Corpus_bench.name tag label)
              true (results_equal tree vm)
          in
          (* The certified trigger recipe: inputs + fault plan +
             (for threaded instances) the failing schedule. *)
          check "trigger"
            ~inputs:inst.Corpus_bench.trigger_inputs
            ~fault_plan:inst.Corpus_bench.fault_plan
            ~sched_of:(fun () ->
              match inst.Corpus_bench.schedule_hint with
              | Some hint -> Sched.Replay hint
              | None -> Sched.Round_robin);
          (* Benign inputs under the same fault plan. *)
          check "benign"
            ~inputs:inst.Corpus_bench.benign_inputs
            ~fault_plan:inst.Corpus_bench.fault_plan
            ~sched_of:(fun () -> Sched.Round_robin);
          (* Random schedules (threaded instances weave differently;
             single-threaded ones have no contended points). *)
          for rep = 1 to 3 do
            check
              (Printf.sprintf "random-%d" rep)
              ~inputs:inst.Corpus_bench.benign_inputs ~fault_plan:Env.No_faults
              ~sched_of:(fun () -> Sched.Random_sched (Rng.create ((31 * !case) + rep)))
          done)
        (instance_programs inst))
    (Lazy.force corpus3)

(* ---- Construction-time certification surface ---------------------- *)

let test_verify_accepts_generated () =
  List.iter
    (fun (inst : Corpus_bench.instance) ->
      match Corpus_bench.verify inst with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s failed re-verification: %s" inst.Corpus_bench.name msg)
    (Lazy.force corpus3)

let test_corpus_shape () =
  let instances = Lazy.force corpus3 in
  checki "6 families x 3 seeds" 18 (List.length instances);
  let threaded = List.filter Corpus_bench.concurrent instances in
  checkb "at least one concurrency family" true (List.length threaded >= 3);
  List.iter
    (fun (inst : Corpus_bench.instance) ->
      let label = inst.Corpus_bench.name in
      checkb (label ^ " trigger accepts witness") true
        (inst.Corpus_bench.trigger inst.Corpus_bench.trigger_inputs);
      if Corpus_bench.concurrent inst then
        checkb (label ^ " has schedule hint") true (inst.Corpus_bench.schedule_hint <> None)
      else begin
        checkb (label ^ " rejects benign inputs") false
          (inst.Corpus_bench.trigger inst.Corpus_bench.benign_inputs);
        checkb (label ^ " has bug sites") true (inst.Corpus_bench.bug_sites <> [])
      end)
    instances

(* The scorer itself: every instance of the three-seed corpus must be
   localized and averted at full precision (the same yardstick the
   @repair-smoke bench asserts, here under the quick config). *)
let test_scorer_localizes_and_averts () =
  let scores, families = Repair_score.score_corpus ~config:quick_config (Lazy.force corpus3) in
  List.iter
    (fun (s : Repair_score.instance_score) ->
      let label = s.Repair_score.name in
      checkb (label ^ " failures seen") true (s.Repair_score.failures_seen > 0);
      checkb (label ^ " isolated") true (s.Repair_score.time_to_isolation <> None);
      checkb (label ^ " localized") true s.Repair_score.localized;
      checkb (label ^ " averted") true s.Repair_score.averted;
      checki (label ^ " precision 1.0") s.Repair_score.proposed s.Repair_score.correct)
    scores;
  checki "six families scored" 6 (List.length families);
  List.iter
    (fun (f : Repair_score.family_score) ->
      checkb (f.Repair_score.family ^ " recall 1.0") true (f.Repair_score.recall = 1.0);
      checkb (f.Repair_score.family ^ " coverage > 0.5") true
        (f.Repair_score.mean_proof_coverage > 0.5))
    families

let () =
  Alcotest.run "softborg_corpus"
    [
      ( "corpus_bench",
        [
          Alcotest.test_case "shape and witnesses" `Quick test_corpus_shape;
          Alcotest.test_case "verify accepts generated" `Quick test_verify_accepts_generated;
          Alcotest.test_case "codec round-trip + digest stability" `Quick
            test_codec_roundtrip_and_digest_stable;
          Alcotest.test_case "seed determinism (510 instances)" `Quick
            test_seed_determinism_500;
          Alcotest.test_case "tree/vm equivalence (all families)" `Quick
            test_engine_equivalence;
        ] );
      ( "repair_score",
        [
          Alcotest.test_case "no false positives on fixed variants" `Quick
            test_fixgen_no_false_positives;
          Alcotest.test_case "localizes and averts every instance" `Quick
            test_scorer_localizes_and_averts;
        ] );
    ]
