(* The federation battery: the N-shard merge must be indistinguishable,
   byte-for-byte, from one hive fed the same traces — for any shard
   count, any routing split, and any delivery interleaving (latency
   jitter, duplication, retransmission) the transport produces.  Shard
   checkpoints must make a crash-restore cycle invisible, and the shard
   map must be a pure, codec-stable partition. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec
module Rng = Softborg_util.Rng
module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Hive = Softborg_hive.Hive
module Knowledge = Softborg_hive.Knowledge
module Protocol = Softborg_hive.Protocol
module Shard_map = Softborg_hive.Shard_map
module Federation = Softborg_hive.Federation

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ---- Trace payload pools ----------------------------------------------- *)

let run_once ?(seed = 7) program inputs =
  let env = Env.make ~seed ~inputs () in
  Interp.run ~program ~env ~sched:Sched.Round_robin ()

let upload_of program r =
  let trace = Trace.of_result ~program_digest:(Ir.digest program) ~pod:1 ~fix_epoch:0 r in
  Protocol.encode (Protocol.Trace_upload (Wire.encode trace))

(* Pre-computed upload frames over two programs, so each QCheck case
   picks a random multiset without re-running the interpreter. *)
let upload_pool =
  let rng = Rng.create 4242 in
  let parser =
    List.init 32 (fun i ->
        let inputs =
          if Rng.int rng 5 = 0 then Corpus.parser_trigger
          else Array.init 3 (fun _ -> Rng.int_in rng 0 30)
        in
        upload_of Corpus.parser (run_once ~seed:i Corpus.parser inputs))
  in
  let fig2 =
    List.init 16 (fun i ->
        upload_of Corpus.fig2_write (run_once ~seed:i Corpus.fig2_write [| Rng.int_in rng (-5) 305 |]))
  in
  Array.of_list (parser @ fig2)

let pick_uploads rng n =
  List.init n (fun _ -> upload_pool.(Rng.int rng (Array.length upload_pool)))

(* ---- Drivers ------------------------------------------------------------ *)

let fed_config ?(synthesize = false) ?transport ~n_shards () =
  let base = Federation.default_config ~n_shards () in
  {
    base with
    Federation.synthesize;
    transport = Option.value ~default:base.Federation.transport transport;
  }

let make_fed ?synthesize ?transport ~n_shards ~seed () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let config = fed_config ?synthesize ?transport ~n_shards () in
  let fed = Federation.create ~config ~sim ~rng () in
  ignore (Federation.register_program fed Corpus.parser);
  ignore (Federation.register_program fed Corpus.fig2_write);
  (sim, rng, fed)

(* Attach [n_pods] pod connections; returns the pod-side endpoints. *)
let attach_pods ?transport sim rng fed n_pods =
  List.init n_pods (fun _ ->
      let pod_side, router_side = Transport.endpoint_pair ?config:transport ~sim ~rng () in
      Federation.attach_pod fed router_side;
      Sim.run sim;
      pod_side)

(* Flush/commit until the exchange quiesces: no pending payloads on any
   shard and a commit round that merges nothing. *)
let settle sim fed =
  let rec go budget =
    if budget = 0 then Alcotest.fail "federation exchange did not quiesce";
    Federation.flush fed;
    Sim.run sim;
    let merged_now = Federation.commit fed in
    let stats = Federation.stats fed in
    let pending =
      List.fold_left (fun acc s -> acc + s.Federation.pending) 0 stats.Federation.per_shard
    in
    if merged_now > 0 || pending > 0 then go (budget - 1)
  in
  go 8

(* Send every upload through the pod fleet (round-robin), deliver, then
   settle the superstep exchange. *)
let run_fed ?synthesize ?transport ~n_shards ~seed uploads =
  let sim, rng, fed = make_fed ?synthesize ?transport ~n_shards ~seed () in
  let pods = attach_pods ?transport sim rng fed 2 in
  List.iteri
    (fun i payload -> Transport.send (List.nth pods (i mod List.length pods)) payload)
    uploads;
  Sim.run sim;
  settle sim fed;
  (sim, fed)

(* The single-hive oracle: one hive ingests the identical upload frames
   directly, in submission order. *)
let oracle_bytes uploads =
  let sim = Sim.create () in
  let config = { (Hive.default_config Hive.Full) with Hive.synthesize = false } in
  let hive = Hive.create ~config ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  ignore (Hive.register_program hive Corpus.fig2_write);
  List.iter (Hive.ingest_payload hive) uploads;
  (hive, Hive.checkpoint hive)

let sorted_knowledge hive =
  Hive.knowledge_list hive
  |> List.sort (fun a b -> String.compare (Knowledge.digest a) (Knowledge.digest b))

(* ---- Merge equality ----------------------------------------------------- *)

(* The headline property: for shard counts 1/2/4 the merged knowledge
   checkpoint is byte-identical to the single hive's, even though the
   commit order (shard, seq) differs from submission order; and one
   post-merge analysis pass on each side still agrees byte-for-byte —
   fix ids and epochs are a pure function of the evidence multiset. *)
let prop_merge_equals_single =
  QCheck.Test.make ~name:"N-shard merge is byte-identical to the single hive" ~count:40
    QCheck.(triple small_nat (int_range 1 36) (int_range 0 2))
    (fun (seed, n, shard_choice) ->
      let n_shards = [| 1; 2; 4 |].(shard_choice) in
      let uploads = pick_uploads (Rng.create (seed * 31 + 5)) n in
      let _sim, fed = run_fed ~n_shards ~seed:(seed + 1) uploads in
      let oracle_hive, oracle = oracle_bytes uploads in
      let merged = Federation.merged fed in
      if Hive.checkpoint merged <> oracle then
        QCheck.Test.fail_report "merged knowledge differs from single hive";
      List.iter (fun k -> ignore (Knowledge.analyze k)) (sorted_knowledge merged);
      List.iter (fun k -> ignore (Knowledge.analyze k)) (sorted_knowledge oracle_hive);
      if Hive.checkpoint merged <> Hive.checkpoint oracle_hive then
        QCheck.Test.fail_report "post-merge analysis diverged from single hive";
      Federation.shutdown fed;
      true)

(* Same property under a hostile delivery schedule: latency jitter
   (reordering), packet drops (retransmission), and fault-injected
   duplication on every federation link.  The transport's dedup plus
   the (shard, seq) commit order must still reproduce the oracle. *)
let prop_merge_equality_survives_link_faults =
  QCheck.Test.make ~name:"merge equality survives duplication, drops, and reordering"
    ~count:25
    QCheck.(triple small_nat (int_range 1 24) bool)
    (fun (seed, n, four_shards) ->
      let n_shards = if four_shards then 4 else 2 in
      let transport =
        {
          Transport.default_config with
          Transport.link =
            { Link.drop_probability = 0.05; mean_latency = 0.08; min_latency = 0.001 };
        }
      in
      let uploads = pick_uploads (Rng.create (seed * 13 + 3)) n in
      let sim, rng, fed = make_fed ~transport ~n_shards ~seed:(seed + 2) () in
      let pods = attach_pods ~transport sim rng fed 2 in
      List.iter (fun l -> Link.set_duplicate_probability l 0.25) (Federation.links fed);
      List.iteri
        (fun i payload -> Transport.send (List.nth pods (i mod List.length pods)) payload)
        uploads;
      Sim.run sim;
      settle sim fed;
      let _, oracle = oracle_bytes uploads in
      let equal = Hive.checkpoint (Federation.merged fed) = oracle in
      Federation.shutdown fed;
      equal)

let test_commit_order_is_shard_then_seq () =
  (* Drive two superstep rounds and check the accounting: every delta
     sent is committed, nothing is merged twice, and the merged trace
     count equals the uploads delivered. *)
  let uploads = pick_uploads (Rng.create 99) 20 in
  let _sim, fed = run_fed ~n_shards:4 ~seed:11 uploads in
  let stats = Federation.stats fed in
  checki "all deltas committed" stats.Federation.deltas_sent stats.Federation.deltas_committed;
  checki "every upload merged exactly once" (List.length uploads)
    stats.Federation.payloads_merged;
  let merged_traces =
    List.fold_left
      (fun acc k -> acc + Knowledge.traces_ingested k)
      0
      (Hive.knowledge_list (Federation.merged fed))
  in
  checki "merged hive ingested the full multiset" (List.length uploads) merged_traces;
  Federation.shutdown fed

let test_fix_publication_reaches_shards_and_pods () =
  (* With synthesis on, the coordinator's deployed fixes must propagate:
     shards adopt the full set (same epoch), pods receive a Fix_update. *)
  let uploads = pick_uploads (Rng.create 7) 30 in
  let sim, rng, fed = make_fed ~synthesize:true ~n_shards:2 ~seed:21 () in
  let pods = attach_pods sim rng fed 2 in
  let pod_fix_updates = ref 0 in
  List.iter
    (fun pod ->
      Transport.on_receive pod (fun payload ->
          match Protocol.decode payload with
          | Ok (Protocol.Fix_update _) -> incr pod_fix_updates
          | _ -> ()))
    pods;
  List.iteri
    (fun i payload -> Transport.send (List.nth pods (i mod List.length pods)) payload)
    uploads;
  Sim.run sim;
  Federation.superstep fed;
  Sim.run sim;
  Federation.superstep fed;
  Sim.run sim;
  let merged_epochs =
    List.map (fun k -> (Knowledge.digest k, Knowledge.epoch k, Knowledge.fixes k))
      (sorted_knowledge (Federation.merged fed))
  in
  checkb "the merged analysis deployed at least one fix" true
    (List.exists (fun (_, epoch, _) -> epoch > 0) merged_epochs);
  for i = 0 to Federation.n_shards fed - 1 do
    let shard_epochs =
      List.map (fun k -> (Knowledge.digest k, Knowledge.epoch k, Knowledge.fixes k))
        (sorted_knowledge (Federation.shard_hive fed i))
    in
    checkb "shard adopted the coordinator's fix set" true (shard_epochs = merged_epochs)
  done;
  checkb "pods received fix updates" true (!pod_fix_updates > 0);
  Federation.shutdown fed

let test_coordinator_retraction_reaches_shards_and_survives_restore () =
  (* Retraction is decided only at the merge coordinator: shards and
     pods learn of it through the published [Fix_retract], in superstep
     order — and a shard restored from a pre-retraction checkpoint is
     caught up by the restore path, so the fix stays dead. *)
  let module Fixgen = Softborg_hive.Fixgen in
  let module Fix_lifecycle = Softborg_hive.Fix_lifecycle in
  let rollout =
    { Fix_lifecycle.default_config with Fix_lifecycle.min_exposed = 2; min_control = 2 }
  in
  let sim = Sim.create () in
  let rng = Rng.create 83 in
  let config =
    let base = fed_config ~synthesize:true ~n_shards:2 () in
    {
      base with
      Federation.merged_hive = { base.Federation.merged_hive with Hive.rollout = Some rollout };
    }
  in
  let fed = Federation.create ~config ~sim ~rng () in
  ignore (Federation.register_program fed Corpus.parser);
  ignore (Federation.register_program fed Corpus.fig2_write);
  let pods = attach_pods sim rng fed 2 in
  let retract_frames = ref 0 in
  List.iter
    (fun pod ->
      Transport.on_receive pod (fun payload ->
          match Protocol.decode payload with
          | Ok (Protocol.Fix_retract _) -> incr retract_frames
          | _ -> ()))
    pods;
  let digest = Ir.digest Corpus.parser in
  let mk = Option.get (Hive.knowledge (Federation.merged fed) ~digest) in
  Hive.inject_fix (Federation.merged fed) ~digest
    (Fixgen.sabotage_kind Fixgen.Misplaced_guard ~program:Corpus.parser);
  let fix_id =
    match Knowledge.canary_ids mk with
    | [ id ] -> id
    | _ -> Alcotest.fail "expected one canary at the coordinator"
  in
  (* Superstep 1 publishes the canary deployment; shards adopt it. *)
  Federation.superstep fed;
  Sim.run sim;
  for i = 0 to Federation.n_shards fed - 1 do
    let sk = Option.get (Hive.knowledge (Federation.shard_hive fed i) ~digest) in
    checki "shard adopted the canary deployment" (Knowledge.epoch mk) (Knowledge.epoch sk)
  done;
  (* Shard 0's durable state as of the deployment — before retraction. *)
  let pre_retraction = Federation.checkpoint_shard fed 0 in
  (* Misfire evidence through the pod fleet: the guard fires on a
     workload the control cohort shows benign. *)
  let epoch = Knowledge.epoch mk in
  let frames =
    List.concat
      (List.init 3 (fun i ->
           let r = run_once ~seed:(60 + i) Corpus.parser [| 0; 0; 0 |] in
           let upload ~pod ~active ~hook_fires =
             Protocol.encode
               (Protocol.Trace_upload
                  (Wire.encode
                     (Trace.of_result ~program_digest:digest ~pod ~fix_epoch:epoch
                        ~attribution:{ Trace.active_fixes = active; hook_fires }
                        r)))
           in
           [ upload ~pod:1 ~active:[ fix_id ] ~hook_fires:1;
             upload ~pod:2 ~active:[] ~hook_fires:0 ]))
  in
  List.iteri
    (fun i payload -> Transport.send (List.nth pods (i mod List.length pods)) payload)
    frames;
  Sim.run sim;
  (* Drain the shard deltas into the coordinator, then let the next
     superstep's health test retract and publish. *)
  settle sim fed;
  Federation.superstep fed;
  Sim.run sim;
  Alcotest.(check (list int)) "coordinator retracted the fix" [ fix_id ]
    (Knowledge.retracted_ids mk);
  checki "nothing live at the coordinator" 0 (List.length (Knowledge.live_fixes mk));
  checkb "pods received the Fix_retract" true (!retract_frames > 0);
  checkb "federation counted the retract broadcast" true
    ((Federation.stats fed).Federation.retracts_sent > 0);
  for i = 0 to Federation.n_shards fed - 1 do
    let sk = Option.get (Hive.knowledge (Federation.shard_hive fed i) ~digest) in
    Alcotest.(check (list int)) "shard adopted the retraction" [ fix_id ]
      (Knowledge.retracted_ids sk);
    checki "nothing live on the shard" 0 (List.length (Knowledge.live_fixes sk))
  done;
  (* Crash: shard 0 restarts from its pre-retraction checkpoint.  The
     restore catch-up adopts the coordinator's current fix set, so the
     retracted fix must not come back to life. *)
  (match Federation.restore_shard fed 0 pre_retraction with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok _ -> ());
  let sk = Option.get (Hive.knowledge (Federation.shard_hive fed 0) ~digest) in
  Alcotest.(check (list int)) "restored shard caught up to the retraction" [ fix_id ]
    (Knowledge.retracted_ids sk);
  checki "restored shard resurrects nothing" 0 (List.length (Knowledge.live_fixes sk));
  Federation.shutdown fed

(* ---- Shard checkpoint / restore ----------------------------------------- *)

let knowledge_fingerprints hive =
  List.map
    (fun k ->
      (Knowledge.digest k, Knowledge.epoch k, Knowledge.traces_ingested k,
       Knowledge.failures_observed k))
    (sorted_knowledge hive)

let test_shard_checkpoint_roundtrip () =
  (* Checkpoint with a non-empty pending buffer: restore must bring the
     buffer back and re-checkpoint to the same bytes. *)
  let uploads = pick_uploads (Rng.create 17) 12 in
  let sim, rng, fed = make_fed ~n_shards:2 ~seed:31 () in
  let pods = attach_pods sim rng fed 1 in
  List.iter (fun payload -> Transport.send (List.hd pods) payload) uploads;
  Sim.run sim;
  (* No flush yet: everything admitted sits in the pending buffers. *)
  let stats = Federation.stats fed in
  let pending =
    List.fold_left (fun acc s -> acc + s.Federation.pending) 0 stats.Federation.per_shard
  in
  checki "uploads are pending, not yet flushed" (List.length uploads) pending;
  for i = 0 to Federation.n_shards fed - 1 do
    let bytes = Federation.checkpoint_shard fed i in
    let before = knowledge_fingerprints (Federation.shard_hive fed i) in
    (match Federation.restore_shard fed i bytes with
    | Error e -> Alcotest.failf "restore failed: %s" e
    | Ok n -> checki "both programs restored" 2 n);
    checkb "knowledge identical after restore" true
      (knowledge_fingerprints (Federation.shard_hive fed i) = before);
    checks "re-checkpoint byte-identical" bytes (Federation.checkpoint_shard fed i)
  done;
  (* The restored pending buffers must still flush and merge. *)
  settle sim fed;
  let _, oracle = oracle_bytes uploads in
  checks "restored shards still merge to the oracle" oracle
    (Hive.checkpoint (Federation.merged fed));
  Federation.shutdown fed

let test_shard_crash_restore_invisible_vs_twin () =
  (* Two federations run the identical upload schedule; in one, shard 0
     crashes mid-run and restores from a just-taken checkpoint.  The
     crash must be invisible: final merged bytes and every shard's
     checkpoint bytes equal the fault-free twin's. *)
  let uploads = pick_uploads (Rng.create 23) 24 in
  let phase1, phase2 =
    let rec split i = function
      | rest when i = 0 -> ([], rest)
      | x :: rest ->
        let a, b = split (i - 1) rest in
        (x :: a, b)
      | [] -> ([], [])
    in
    split 12 uploads
  in
  let drive_phase sim pods uploads =
    List.iteri
      (fun i payload -> Transport.send (List.nth pods (i mod List.length pods)) payload)
      uploads;
    Sim.run sim
  in
  let build crash =
    let sim, rng, fed = make_fed ~n_shards:2 ~seed:41 () in
    let pods = attach_pods sim rng fed 2 in
    drive_phase sim pods phase1;
    if crash then begin
      (* Kill-and-restart from a checkpoint taken at the moment of the
         crash: pending payloads and the delta seq counter round-trip. *)
      let bytes = Federation.checkpoint_shard fed 0 in
      match Federation.restore_shard fed 0 bytes with
      | Error e -> Alcotest.failf "crash restore failed: %s" e
      | Ok _ -> ()
    end;
    drive_phase sim pods phase2;
    settle sim fed;
    fed
  in
  let fed_a = build false in
  let fed_b = build true in
  checks "merged knowledge equal to fault-free twin"
    (Hive.checkpoint (Federation.merged fed_a))
    (Hive.checkpoint (Federation.merged fed_b));
  for i = 0 to 1 do
    checks "shard checkpoint equal to fault-free twin"
      (Federation.checkpoint_shard fed_a i)
      (Federation.checkpoint_shard fed_b i)
  done;
  Federation.shutdown fed_a;
  Federation.shutdown fed_b

let test_restore_never_rewinds_delta_seq () =
  (* Restore from a checkpoint older than the last flush: the shard's
     knowledge reverts, but the next delta must use a fresh sequence
     number, so post-restore evidence still reaches the coordinator. *)
  let sim, rng, fed = make_fed ~n_shards:1 ~seed:51 () in
  let pods = attach_pods sim rng fed 1 in
  let old = Federation.checkpoint_shard fed 0 in
  let uploads = pick_uploads (Rng.create 29) 6 in
  List.iter (fun payload -> Transport.send (List.hd pods) payload) uploads;
  Sim.run sim;
  settle sim fed;
  let merged_before = (Federation.stats fed).Federation.payloads_merged in
  checki "first round merged" (List.length uploads) merged_before;
  (match Federation.restore_shard fed 0 old with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok _ -> ());
  let more = pick_uploads (Rng.create 37) 5 in
  List.iter (fun payload -> Transport.send (List.hd pods) payload) more;
  Sim.run sim;
  settle sim fed;
  checki "post-restore deltas are not dropped as duplicates"
    (merged_before + List.length more)
    (Federation.stats fed).Federation.payloads_merged;
  Federation.shutdown fed

let test_restore_rejects_corruption_untouched () =
  let uploads = pick_uploads (Rng.create 43) 8 in
  let _sim, fed = run_fed ~n_shards:2 ~seed:61 uploads in
  let good = Federation.checkpoint_shard fed 0 in
  let before = knowledge_fingerprints (Federation.shard_hive fed 0) in
  (match Federation.restore_shard fed 0 "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input must not restore");
  (match Federation.restore_shard fed 0 "SBFSgarbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not restore");
  (match Federation.restore_shard fed 0 (String.sub good 0 (String.length good / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation must not restore");
  checkb "failed restores leave the shard untouched" true
    (knowledge_fingerprints (Federation.shard_hive fed 0) = before);
  checks "checkpoint unchanged" good (Federation.checkpoint_shard fed 0);
  Federation.shutdown fed

(* ---- Shutdown idempotence ----------------------------------------------- *)

let test_shutdown_idempotent () =
  (* Double shutdown must not raise — including with worker pools, where
     a second join of the same domains used to be the hazard. *)
  let sim = Sim.create () in
  let hive =
    Hive.create ~config:{ (Hive.default_config Hive.Full) with Hive.pool_size = 2 } ~sim ()
  in
  Hive.shutdown hive;
  Hive.shutdown hive;
  let config =
    let base = Federation.default_config ~n_shards:2 () in
    { base with Federation.pool_size = 2 }
  in
  let fed = Federation.create ~config ~sim ~rng:(Rng.create 71) () in
  ignore (Federation.register_program fed Corpus.parser);
  Federation.shutdown fed;
  Federation.shutdown fed;
  checkb "double shutdown is a no-op" true true

(* ---- Shard map ----------------------------------------------------------- *)

let test_shard_map_validation () =
  (match Shard_map.create ~n_shards:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n_shards 0 must be rejected");
  (match Shard_map.create ~prefix_bits:0 ~n_shards:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prefix_bits 0 must be rejected");
  match Shard_map.create ~prefix_bits:21 ~n_shards:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prefix_bits 21 must be rejected"

let prop_shard_map_partition =
  QCheck.Test.make ~name:"shard map is a contiguous monotone partition" ~count:200
    QCheck.(triple (int_range 1 16) (int_range 1 12) (list_of_size Gen.(0 -- 30) bool))
    (fun (n_shards, prefix_bits, path) ->
      let map = Shard_map.create ~prefix_bits ~n_shards () in
      let owner = Shard_map.owner_of_bits map (Bitvec.of_bools path) in
      if owner < 0 || owner >= n_shards then
        QCheck.Test.fail_report "owner out of range";
      (* Monotone in the prefix value: flipping any 0-bit of the first
         [prefix_bits] decisions to 1 cannot move the path to a lower
         shard. *)
      List.iteri
        (fun i b ->
          if i < prefix_bits && not b then begin
            let raised = List.mapi (fun j x -> if j = i then true else x) path in
            if Shard_map.owner_of_bits map (Bitvec.of_bools raised) < owner then
              QCheck.Test.fail_report "owner not monotone in the prefix value"
          end)
        path;
      (* Zero-padding: a short path and its explicit all-false extension
         share an owner, and no extension maps below it — the padded
         owner is the rendezvous shard for the whole subtree. *)
      let padded = path @ List.init prefix_bits (fun _ -> false) in
      if Shard_map.owner_of_prefix map path <> Shard_map.owner_of_bits map (Bitvec.of_bools padded)
      then QCheck.Test.fail_report "zero-pad owner mismatch";
      if Shard_map.owner_of_prefix map path > owner then
        QCheck.Test.fail_report "rendezvous owner exceeds a member's owner";
      true)

let test_shard_map_covers_all_shards () =
  (* With at least as many ranges as shards, every shard owns a value —
     no shard can sit idle by construction. *)
  List.iter
    (fun n_shards ->
      let bits = 4 in
      let map = Shard_map.create ~prefix_bits:bits ~n_shards () in
      let seen = Array.make n_shards false in
      for v = 0 to (1 lsl bits) - 1 do
        let path = List.init bits (fun i -> (v lsr (bits - 1 - i)) land 1 = 1) in
        seen.(Shard_map.owner_of_prefix map path) <- true
      done;
      Array.iteri
        (fun i covered -> if not covered then Alcotest.failf "shard %d owns no range" i)
        seen)
    [ 1; 2; 3; 8; 16 ]

let test_shard_map_codec () =
  let map = Shard_map.create ~prefix_bits:11 ~n_shards:5 () in
  let w = Codec.Writer.create () in
  Shard_map.write w map;
  let bytes = Codec.Writer.contents w in
  checkb "round trip" true (Shard_map.equal map (Shard_map.read (Codec.Reader.of_string bytes)));
  let encode n_shards prefix_bits =
    let w = Codec.Writer.create () in
    Codec.Writer.varint w n_shards;
    Codec.Writer.varint w prefix_bits;
    Codec.Writer.contents w
  in
  List.iter
    (fun (n, b) ->
      match Shard_map.read (Codec.Reader.of_string (encode n b)) with
      | exception Codec.Malformed _ -> ()
      | _ -> Alcotest.failf "map n=%d bits=%d must not decode" n b)
    [ (0, 8); (2, 0); (2, 21) ]

let test_shard_map_update_on_the_wire () =
  let map = Shard_map.create ~prefix_bits:9 ~n_shards:3 () in
  match Protocol.decode (Protocol.encode (Protocol.Shard_map_update { map })) with
  | Ok (Protocol.Shard_map_update { map = map' }) ->
    checkb "protocol round trip" true (Shard_map.equal map map')
  | Ok _ -> Alcotest.fail "decoded to the wrong constructor"
  | Error e -> Alcotest.failf "decode failed: %s" e

(* ---- Platform-level determinism ----------------------------------------- *)

let report_bytes config =
  Format.asprintf "%a" Softborg.Platform.pp_report (Softborg.Platform.run config)

let fed_platform_config ?(n_shards = 2) () =
  let config =
    Softborg.Scenario.single_program ~seed:5 Corpus.parser
    |> Softborg.Scenario.with_shards n_shards
  in
  { config with Softborg.Platform.duration = 90.0; n_pods = 4; sample_interval = 30.0 }

let test_federated_platform_deterministic () =
  let config = fed_platform_config () in
  checks "identical seeds, identical federated reports" (report_bytes config)
    (report_bytes config)

let test_federated_platform_chaos_deterministic () =
  (* Chaos (shard crashes restored from checkpoints, churn, degradation)
     over the federation must stay reproducible and complete. *)
  let config = Softborg.Scenario.with_chaos ~chaos_seed:77 (fed_platform_config ()) in
  let r1 = report_bytes config in
  checks "federated chaos runs are deterministic" r1 (report_bytes config);
  checkb "federation section present" true
    (let report = Softborg.Platform.run config in
     report.Softborg.Platform.federation <> None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_federation"
    [
      ( "merge",
        [
          q prop_merge_equals_single;
          q prop_merge_equality_survives_link_faults;
          Alcotest.test_case "delta accounting" `Quick test_commit_order_is_shard_then_seq;
          Alcotest.test_case "fix publication" `Quick test_fix_publication_reaches_shards_and_pods;
          Alcotest.test_case "coordinator retraction" `Quick
            test_coordinator_retraction_reaches_shards_and_survives_restore;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "shard round trip" `Quick test_shard_checkpoint_roundtrip;
          Alcotest.test_case "crash invisible" `Quick test_shard_crash_restore_invisible_vs_twin;
          Alcotest.test_case "seq never rewinds" `Quick test_restore_never_rewinds_delta_seq;
          Alcotest.test_case "corruption rejected" `Quick test_restore_rejects_corruption_untouched;
        ] );
      ( "shutdown", [ Alcotest.test_case "idempotent" `Quick test_shutdown_idempotent ] );
      ( "shard_map",
        [
          Alcotest.test_case "validation" `Quick test_shard_map_validation;
          q prop_shard_map_partition;
          Alcotest.test_case "coverage" `Quick test_shard_map_covers_all_shards;
          Alcotest.test_case "codec" `Quick test_shard_map_codec;
          Alcotest.test_case "protocol frame" `Quick test_shard_map_update_on_the_wire;
        ] );
      ( "platform",
        [
          Alcotest.test_case "deterministic" `Quick test_federated_platform_deterministic;
          Alcotest.test_case "chaos deterministic" `Quick
            test_federated_platform_chaos_deterministic;
        ] );
    ]
