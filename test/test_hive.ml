(* Tests for the hive: statistical isolation, fix synthesis, knowledge
   ingestion, the prover, guidance planning, allocation, the message
   protocol, and the hive service loop. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Sampling = Softborg_trace.Sampling
module Exec_tree = Softborg_tree.Exec_tree
module Path_cond = Softborg_solver.Path_cond
module Isolate = Softborg_hive.Isolate
module Fixgen = Softborg_hive.Fixgen
module Knowledge = Softborg_hive.Knowledge
module Prover = Softborg_hive.Prover
module Guidance = Softborg_hive.Guidance
module Allocate = Softborg_hive.Allocate
module Protocol = Softborg_hive.Protocol
module Hive = Softborg_hive.Hive
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Codec = Softborg_util.Codec
module Rng = Softborg_util.Rng
module Pool = Softborg_util.Pool
module Gap_memo = Softborg_hive.Gap_memo

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let run_once ?(fault_plan = Env.No_faults) ?(seed = 7) program inputs =
  let env = Env.make ~fault_plan ~seed ~inputs () in
  Interp.run ~program ~env ~sched:Sched.Round_robin ()

let trace_of ?(pod = 1) ?(fix_epoch = 0) program r =
  Trace.of_result ~program_digest:(Ir.digest program) ~pod ~fix_epoch r

let parser_true_predicate () =
  let r = run_once Corpus.parser Corpus.parser_trigger in
  match List.rev r.Interp.full_path with
  | (site, direction) :: _ -> { Sampling.site; direction }
  | [] -> Alcotest.fail "no decisions"

(* ---- Isolate -------------------------------------------------------- *)

let feed_isolate isolate ~crashing ~passing =
  for i = 1 to crashing do
    let r = run_once ~seed:i Corpus.parser Corpus.parser_trigger in
    Isolate.record_path isolate ~full_path:r.Interp.full_path ~outcome:r.Interp.outcome
  done;
  let rng = Rng.create 5 in
  for i = 1 to passing do
    let inputs = Array.init 3 (fun _ -> Rng.int_in rng 0 100) in
    let r = run_once ~seed:i Corpus.parser inputs in
    Isolate.record_path isolate ~full_path:r.Interp.full_path ~outcome:r.Interp.outcome
  done

let test_isolate_localizes_parser_bug () =
  let isolate = Isolate.create () in
  feed_isolate isolate ~crashing:10 ~passing:200;
  (* Classic CBI behavior: the top-ranked predicate lies on the crash
     path (the deepest guard or one of its ancestors, whichever has
     the highest Increase), and the exact guard ranks near the top. *)
  let crash_run = run_once Corpus.parser Corpus.parser_trigger in
  let crash_predicates =
    List.map (fun (site, direction) -> { Sampling.site; direction }) crash_run.Interp.full_path
  in
  (match Isolate.top_predicate isolate with
  | Some ranked ->
    checkb "top predicate lies on the crash path" true
      (List.exists (Sampling.predicate_equal ranked.Isolate.predicate) crash_predicates)
  | None -> Alcotest.fail "no top predicate");
  match Isolate.localization_rank isolate ~target:(parser_true_predicate ()) with
  | Some rank -> checkb "exact guard near the top" true (rank <= 5)
  | None -> Alcotest.fail "true predicate never observed"

let test_isolate_top_predicate_positive () =
  let isolate = Isolate.create () in
  feed_isolate isolate ~crashing:5 ~passing:100;
  match Isolate.top_predicate isolate with
  | Some ranked -> checkb "positive score" true (ranked.Isolate.score > 0.0)
  | None -> Alcotest.fail "no top predicate"

let test_isolate_counts () =
  let isolate = Isolate.create () in
  feed_isolate isolate ~crashing:3 ~passing:7;
  checki "runs" 10 (Isolate.runs isolate);
  checki "failing" 3 (Isolate.failing_runs isolate)

let test_isolate_no_failures_no_positive_score () =
  let isolate = Isolate.create () in
  feed_isolate isolate ~crashing:0 ~passing:50;
  checkb "no positively-scored predicate" true (Isolate.top_predicate isolate = None)

let test_isolate_from_sampled_reports () =
  let isolate = Isolate.create () in
  let rng = Rng.create 3 in
  for i = 1 to 30 do
    let r = run_once ~seed:i Corpus.parser Corpus.parser_trigger in
    Isolate.record isolate
      (Sampling.sample rng ~rate:2 ~full_path:r.Interp.full_path ~outcome:r.Interp.outcome)
  done;
  for i = 1 to 300 do
    let inputs = Array.init 3 (fun _ -> Rng.int_in rng 0 100) in
    let r = run_once ~seed:i Corpus.parser inputs in
    Isolate.record isolate
      (Sampling.sample rng ~rate:2 ~full_path:r.Interp.full_path ~outcome:r.Interp.outcome)
  done;
  match Isolate.localization_rank isolate ~target:(parser_true_predicate ()) with
  | Some rank -> checkb "localized from sampled data" true (rank <= 3)
  | None -> Alcotest.fail "lost under sampling"

(* ---- Fixgen ----------------------------------------------------------- *)

let parser_crash_evidence () =
  let r = run_once Corpus.parser Corpus.parser_trigger in
  match r.Interp.outcome with
  | Outcome.Crash { site; kind; _ } ->
    {
      Fixgen.site;
      crash_kind = kind;
      bucket = Outcome.bucket_key r.Interp.outcome;
      count = 3;
    }
  | o -> Alcotest.failf "expected crash, got %a" Outcome.pp o

let test_fixgen_derives_input_guard () =
  let fixes =
    Fixgen.propose ~program:Corpus.parser ~deadlock_patterns:[]
      ~crashes:[ parser_crash_evidence () ] ~existing:[] ~next_epoch:1 ()
  in
  let guard =
    List.find_map
      (fun f ->
        match f.Fixgen.kind with Fixgen.Input_guard { condition; _ } -> Some condition | _ -> None)
      fixes
  in
  (match guard with
  | Some condition ->
    checkb "guard matches the trigger" true
      (Path_cond.satisfied_by condition Corpus.parser_trigger);
    checkb "guard rejects benign input" false (Path_cond.satisfied_by condition [| 1; 2; 3 |])
  | None -> Alcotest.fail "no input guard derived");
  checkb "repair-lab candidate also proposed" true
    (List.exists
       (fun f -> match f.Fixgen.kind with Fixgen.Patch_candidate _ -> true | _ -> false)
       fixes)

let test_fixgen_deadlock_immunity () =
  let fixes =
    Fixgen.propose ~program:Corpus.worker_pool ~deadlock_patterns:[ [ 1; 0 ] ] ~crashes:[]
      ~existing:[] ~next_epoch:1 ()
  in
  match fixes with
  | [ { Fixgen.kind = Fixgen.Deadlock_immunity [ 0; 1 ]; _ } ] -> ()
  | _ -> Alcotest.failf "expected one normalized immunity fix, got %d" (List.length fixes)

let test_fixgen_dedupes_existing () =
  let first =
    Fixgen.propose ~program:Corpus.parser ~deadlock_patterns:[ [ 0; 1 ] ]
      ~crashes:[ parser_crash_evidence () ] ~existing:[] ~next_epoch:1 ()
  in
  let second =
    Fixgen.propose ~program:Corpus.parser ~deadlock_patterns:[ [ 0; 1 ] ]
      ~crashes:[ parser_crash_evidence () ] ~existing:first ~next_epoch:2 ()
  in
  checki "nothing new" 0 (List.length second)

let test_fixgen_multithreaded_falls_back_to_suppression () =
  let r =
    Interp.run ~program:Corpus.racy_counter
      ~env:(Env.make ~seed:1 ~inputs:[||] ())
      ~sched:(Sched.Random_sched (Rng.create 1))
      ()
  in
  let rec find seed =
    if seed > 100 then Alcotest.fail "race never manifested"
    else
      let r =
        Interp.run ~program:Corpus.racy_counter
          ~env:(Env.make ~seed:1 ~inputs:[||] ())
          ~sched:(Sched.Random_sched (Rng.create seed))
          ()
      in
      match r.Interp.outcome with Outcome.Crash _ -> r | _ -> find (seed + 1)
  in
  let r = match r.Interp.outcome with Outcome.Crash _ -> r | _ -> find 0 in
  let evidence =
    match r.Interp.outcome with
    | Outcome.Crash { site; kind; _ } ->
      { Fixgen.site; crash_kind = kind; bucket = Outcome.bucket_key r.Interp.outcome; count = 1 }
    | _ -> assert false
  in
  let fixes =
    Fixgen.propose ~program:Corpus.racy_counter ~deadlock_patterns:[] ~crashes:[ evidence ]
      ~existing:[] ~next_epoch:1 ()
  in
  checkb "suppression for schedule-dependent crash" true
    (List.exists
       (fun f -> match f.Fixgen.kind with Fixgen.Crash_suppression _ -> true | _ -> false)
       fixes)

let test_fix_wire_roundtrip () =
  let fixes =
    Fixgen.propose ~program:Corpus.parser ~deadlock_patterns:[ [ 0; 1 ] ]
      ~crashes:[ parser_crash_evidence () ] ~existing:[] ~next_epoch:3 ()
  in
  List.iter
    (fun fix ->
      let w = Codec.Writer.create () in
      Fixgen.write_fix w fix;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      let back = Fixgen.read_fix r in
      checkb (Fixgen.kind_name fix.Fixgen.kind ^ " roundtrips") true (back = fix))
    fixes

let test_runtime_hooks_epoch_filtering () =
  let site = { Ir.thread = 0; pc = 6 } in
  let fixes =
    [
      {
        Fixgen.id = 1;
        epoch = 1;
        kind =
          Fixgen.Crash_suppression
            { bucket = "b"; site; crash_kind = Outcome.Assertion_failure };
      };
    ]
  in
  let hooks_e0 = Fixgen.runtime_hooks ~epoch:0 fixes in
  let hooks_e1 = Fixgen.runtime_hooks ~epoch:1 fixes in
  checkb "not in force at epoch 0" true
    (hooks_e0.Interp.on_crash ~site ~kind:Outcome.Assertion_failure = `Propagate);
  checkb "in force at epoch 1" true
    (hooks_e1.Interp.on_crash ~site ~kind:Outcome.Assertion_failure = `Suppress)

(* ---- Knowledge --------------------------------------------------------- *)

let ingest_n k program ~inputs_for n =
  for i = 1 to n do
    let r = run_once ~seed:i program (inputs_for i) in
    ignore (Knowledge.ingest_trace k (trace_of program r))
  done

let test_knowledge_ingest_builds_tree () =
  let k = Knowledge.create Corpus.fig2_write in
  let rng = Rng.create 2 in
  ingest_n k Corpus.fig2_write ~inputs_for:(fun _ -> [| Rng.int_in rng (-64) 255 |]) 200;
  checki "traces counted" 200 (Knowledge.traces_ingested k);
  checki "no replay errors" 0 (Knowledge.replay_errors k);
  checki "three paths" 3 (Exec_tree.n_distinct_paths (Knowledge.tree k))

let test_knowledge_buckets_crashes () =
  let k = Knowledge.create Corpus.parser in
  ingest_n k Corpus.parser ~inputs_for:(fun _ -> Array.copy Corpus.parser_trigger) 5;
  checki "failures" 5 (Knowledge.failures_observed k);
  match Knowledge.crash_evidence k with
  | [ ev ] -> checki "bucket count" 5 ev.Fixgen.count
  | evs -> Alcotest.failf "expected one bucket, got %d" (List.length evs)

let test_knowledge_analyze_bumps_epoch () =
  let k = Knowledge.create Corpus.parser in
  ingest_n k Corpus.parser ~inputs_for:(fun _ -> Array.copy Corpus.parser_trigger) 2;
  checki "epoch 0 before" 0 (Knowledge.epoch k);
  let fixes = Knowledge.analyze k in
  checkb "fixes proposed" true (fixes <> []);
  checki "epoch bumped" 1 (Knowledge.epoch k);
  (* Re-analysis with no new evidence is a no-op. *)
  checki "no new fixes" 0 (List.length (Knowledge.analyze k));
  checki "epoch stable" 1 (Knowledge.epoch k)

let test_knowledge_replay_respects_fix_epoch () =
  (* A trace recorded under a suppression fix must be replayed with
     that fix in force, or reconstruction diverges. *)
  let k = Knowledge.create Corpus.parser in
  ingest_n k Corpus.parser ~inputs_for:(fun _ -> Array.copy Corpus.parser_trigger) 1;
  ignore (Knowledge.analyze k);
  let hooks = Knowledge.current_hooks k in
  let env = Env.make ~seed:1 ~inputs:Corpus.parser_trigger () in
  let r = Interp.run ~hooks ~program:Corpus.parser ~env ~sched:Sched.Round_robin () in
  checkb "fix suppresses the crash" true (r.Interp.outcome = Outcome.Success);
  let trace = trace_of ~fix_epoch:(Knowledge.epoch k) Corpus.parser r in
  (match Knowledge.ingest_trace k trace with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "replay failed: %s" msg);
  checki "still no replay errors" 0 (Knowledge.replay_errors k)

let test_knowledge_deadlock_buckets () =
  let k = Knowledge.create Corpus.worker_pool in
  let rec ingest_deadlock seed =
    if seed > 300 then Alcotest.fail "no deadlock found"
    else
      let env = Env.make ~seed:1 ~inputs:[| 0 |] () in
      let r =
        Interp.run ~program:Corpus.worker_pool ~env
          ~sched:(Sched.Random_sched (Rng.create seed))
          ()
      in
      match r.Interp.outcome with
      | Outcome.Deadlock _ -> ignore (Knowledge.ingest_trace k (trace_of Corpus.worker_pool r))
      | _ -> ingest_deadlock (seed + 1)
  in
  ingest_deadlock 0;
  match Knowledge.deadlock_bucket_info k with
  | [ (_, locks, 1) ] -> Alcotest.(check (list int)) "lock set" [ 0; 1 ] locks
  | info -> Alcotest.failf "expected one deadlock bucket, got %d" (List.length info)

(* ---- Prover -------------------------------------------------------------- *)

let test_prover_proves_fig2 () =
  let k = Knowledge.create Corpus.fig2_write in
  let rng = Rng.create 4 in
  ingest_n k Corpus.fig2_write ~inputs_for:(fun _ -> [| Rng.int_in rng (-64) 255 |]) 100;
  let closed = Prover.close_gaps Corpus.fig2_write (Knowledge.tree k) in
  checkb "infeasible leaf closed" true (closed >= 1);
  checkb "tree complete after closure" true (Exec_tree.is_complete (Knowledge.tree k));
  match
    Prover.attempt_assert_safety ~program:Corpus.fig2_write ~tree:(Knowledge.tree k)
      ~crash_observations:0 ~epoch:0 ()
  with
  | Some { Prover.strength = Prover.Proved _; _ } -> ()
  | Some { Prover.strength = Prover.Tested _; _ } -> Alcotest.fail "expected Proved, got Tested"
  | None -> Alcotest.fail "no proof"

let test_prover_refuses_buggy_program () =
  match
    Prover.attempt_assert_safety ~program:Corpus.parser ~tree:(Exec_tree.create ())
      ~crash_observations:3 ~epoch:0 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "proved a program with observed crashes"

let test_prover_symbolic_counterexample_blocks_proof () =
  (* Even with zero *observed* crashes, the symbolic crash path in
     parser must block a Proved verdict (a Tested one is fine). *)
  let k = Knowledge.create Corpus.parser in
  ingest_n k Corpus.parser ~inputs_for:(fun i -> [| i; i + 1; i + 2 |]) 20;
  match
    Prover.attempt_assert_safety ~program:Corpus.parser ~tree:(Knowledge.tree k)
      ~crash_observations:0 ~epoch:0 ()
  with
  | Some { Prover.strength = Prover.Proved _; _ } -> Alcotest.fail "proved a buggy program"
  | Some { Prover.strength = Prover.Tested _; _ } -> ()
  | None -> Alcotest.fail "expected at least Tested"

let test_prover_deadlock_freedom_lockless () =
  match
    Prover.attempt_deadlock_freedom ~program:Corpus.parser ~tree:(Exec_tree.create ())
      ~deadlock_observations:0 ~lock_cycles:[]
      ~make_env:(fun () -> Env.make ~seed:1 ~inputs:[| 0; 0; 0 |] ())
      ~hooks:Interp.no_hooks ~epoch:0 ()
  with
  | Some { Prover.strength = Prover.Proved _; _ } -> ()
  | _ -> Alcotest.fail "lockless program should be trivially deadlock-free"

let test_prover_deadlock_freedom_blocked_by_cycle () =
  match
    Prover.attempt_deadlock_freedom ~program:Corpus.worker_pool ~tree:(Exec_tree.create ())
      ~deadlock_observations:0
      ~lock_cycles:[ [ 0; 1 ] ]
      ~make_env:(fun () -> Env.make ~seed:1 ~inputs:[| 0 |] ())
      ~hooks:Interp.no_hooks ~epoch:0 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "proved freedom despite a known cycle"

let test_prover_deadlock_freedom_explores_schedules () =
  (* Unprotected worker-pool deadlocks under exploration: no proof. *)
  (match
     Prover.attempt_deadlock_freedom ~program:Corpus.worker_pool ~tree:(Exec_tree.create ())
       ~deadlock_observations:0 ~lock_cycles:[]
       ~make_env:(fun () -> Env.make ~seed:1 ~inputs:[| 0 |] ())
       ~hooks:Interp.no_hooks ~epoch:0 ()
   with
  | None -> ()
  | Some _ -> Alcotest.fail "exploration should have found the deadlock");
  (* Under immunity hooks, exploration stays clean: Tested evidence. *)
  let immunizer = Softborg_conc.Immunity.create ~patterns:[ [ 0; 1 ] ] in
  match
    Prover.attempt_deadlock_freedom ~program:Corpus.worker_pool ~tree:(Exec_tree.create ())
      ~deadlock_observations:0 ~lock_cycles:[]
      ~make_env:(fun () -> Env.make ~seed:1 ~inputs:[| 0 |] ())
      ~hooks:(Softborg_conc.Immunity.hooks immunizer) ~epoch:1 ()
  with
  | Some { Prover.strength = Prover.Tested { schedules; _ }; _ } ->
    checkb "multiple schedules explored" true (schedules > 1)
  | _ -> Alcotest.fail "expected Tested evidence under immunity"

let test_proof_invalidation () =
  let k = Knowledge.create Corpus.fig2_write in
  (match
     Prover.attempt_assert_safety ~program:Corpus.fig2_write ~tree:(Knowledge.tree k)
       ~crash_observations:0 ~epoch:(Knowledge.epoch k) ()
   with
  | Some proof -> Knowledge.record_proof k proof
  | None -> Alcotest.fail "no proof");
  checki "one valid proof" 1 (List.length (Knowledge.valid_proofs k));
  ignore
    (Knowledge.add_fix k
       (Fixgen.Crash_suppression
          {
            bucket = "x";
            site = { Ir.thread = 0; pc = 0 };
            crash_kind = Outcome.Assertion_failure;
          }));
  checki "proof invalidated by fix deployment" 0 (List.length (Knowledge.valid_proofs k))

(* ---- Guidance -------------------------------------------------------------- *)

let test_guidance_covers_gaps () =
  let tree = Exec_tree.create () in
  (* Only common paths seen: the rare branch directions are gaps. *)
  let rng = Rng.create 6 in
  for i = 1 to 50 do
    let inputs = Array.init 3 (fun _ -> Rng.int_in rng 0 6) in
    let r = run_once ~seed:i Corpus.parser inputs in
    ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome)
  done;
  let result = Guidance.plan Corpus.parser tree in
  checkb "directives produced" true (result.Guidance.directives <> []);
  (* Each directive's test must actually cover its target direction. *)
  List.iter
    (fun directive ->
      match directive with
      | Guidance.Cover_direction { site; direction; test } ->
        let env =
          Env.make ~fault_plan:test.Softborg_symexec.Testgen.fault_plan ~seed:1
            ~inputs:test.Softborg_symexec.Testgen.inputs ()
        in
        let r = Interp.run ~program:Corpus.parser ~env ~sched:Sched.Round_robin () in
        checkb "directive reaches its target" true
          (List.exists
             (fun (s, d) -> Ir.site_equal s site && d = direction)
             r.Interp.full_path)
      | Guidance.Probe_schedules _ -> ())
    result.Guidance.directives

let test_guidance_exclude_respected () =
  let tree = Exec_tree.create () in
  let r = run_once Corpus.parser [| 1; 2; 3 |] in
  ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome);
  let first = Guidance.plan Corpus.parser tree in
  let issued =
    List.filter_map
      (fun d ->
        match d with
        | Guidance.Cover_direction { site; direction; _ } -> Some (site, direction)
        | Guidance.Probe_schedules _ -> None)
      first.Guidance.directives
  in
  let exclude = Hashtbl.create 8 in
  List.iter (fun key -> Hashtbl.replace exclude key ()) issued;
  let second = Guidance.plan ~exclude Corpus.parser tree in
  checkb "excluded gaps not re-planned" true
    (List.for_all
       (fun d ->
         match d with
         | Guidance.Cover_direction { site; direction; _ } ->
           not
             (List.exists
                (fun (s, dir) -> Ir.site_equal s site && dir = direction)
                issued)
         | Guidance.Probe_schedules _ -> true)
       second.Guidance.directives)

(* A deterministic partially-explored parser tree; plan mutates its
   tree (infeasible marks), so each plan call gets a fresh twin. *)
let guidance_tree ?(n = 50) ?(input_range = 6) () =
  let tree = Exec_tree.create () in
  let rng = Rng.create 6 in
  for i = 1 to n do
    let inputs = Array.init 3 (fun _ -> Rng.int_in rng 0 input_range) in
    let r = run_once ~seed:i Corpus.parser inputs in
    ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome)
  done;
  tree

let test_guidance_pool_deterministic () =
  (* The speculative parallel solve must not change any observable:
     identical directives, counters, and post-plan tree for every pool
     size. *)
  let plan_with size =
    let tree = guidance_tree () in
    let pool = Pool.create ~size in
    let result =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Guidance.plan ~pool Corpus.parser tree)
    in
    (result, Exec_tree.frontier tree)
  in
  let r1, f1 = plan_with 1 in
  let r2, f2 = plan_with 2 in
  let r4, f4 = plan_with 4 in
  checkb "pool=2 plan identical to sequential" true (r1 = r2);
  checkb "pool=4 plan identical to sequential" true (r1 = r4);
  checkb "pool=2 leaves identical tree" true (f1 = f2);
  checkb "pool=4 leaves identical tree" true (f1 = f4);
  checkb "sequential plan produced directives" true (r1.Guidance.directives <> [])

let test_guidance_memo_reused () =
  let memo = Gap_memo.create () in
  let r1 = Guidance.plan ~memo Corpus.parser (guidance_tree ()) in
  let misses_after_first = Gap_memo.misses memo in
  checkb "first plan populated the memo" true (Gap_memo.length memo > 0);
  let r2 = Guidance.plan ~memo Corpus.parser (guidance_tree ()) in
  checki "second plan solved nothing new" misses_after_first (Gap_memo.misses memo);
  checkb "second plan hit the memo" true (Gap_memo.hits memo > 0);
  checkb "memoized plan identical" true (r1 = r2)

let test_guidance_sublinear_counters () =
  (* Regression guard for the incremental frontier index: one planning
     tick must sort nothing and materialize at most the gaps it
     considers (3 * max_directives), however large the frontier is.
     A branchy generated program gives a frontier of several hundred
     gaps from a dozen executions. *)
  let program, _ =
    Softborg_prog.Generator.generate (Rng.create 5)
      {
        Softborg_prog.Generator.default_params with
        Softborg_prog.Generator.block_depth = 3;
        stmts_per_block = 5;
        bugs = [];
      }
  in
  let tree = Exec_tree.create () in
  let rng = Rng.create 19 in
  for i = 1 to 12 do
    let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng 0 40) in
    let r = run_once ~seed:i program inputs in
    ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome)
  done;
  let max_directives = 8 in
  checkb "frontier much larger than the considered window" true
    (Exec_tree.frontier_size tree > 10 * (3 * max_directives));
  let memo = Gap_memo.create () in
  (* All verdicts pre-filled Unknown, so the planner walks the full
     considered window instead of stopping at max_directives. *)
  Exec_tree.iter_open_dirs tree (fun site missing ->
      Gap_memo.add memo ~site ~direction:missing `Unknown);
  let sorted0 = Exec_tree.gaps_sorted tree in
  let materialized0 = Exec_tree.gaps_materialized tree in
  let result = Guidance.plan ~max_directives ~memo program tree in
  checki "planning sorts no gaps" 0 (Exec_tree.gaps_sorted tree - sorted0);
  checkb "planning materializes O(k) gaps, not O(frontier)" true
    (Exec_tree.gaps_materialized tree - materialized0 <= 3 * max_directives);
  checki "considered capped at 3k" (3 * max_directives) result.Guidance.gaps_considered

let test_directive_wire_roundtrip () =
  let directives =
    [
      Guidance.Cover_direction
        {
          site = { Ir.thread = 0; pc = 3 };
          direction = true;
          test =
            {
              Softborg_symexec.Testgen.inputs = [| 7; -3; 100 |];
              fault_plan = Env.Targeted [ 0; 2 ];
            };
        };
      Guidance.Probe_schedules { inputs = [| 1; 2 |]; seeds = [ 5; 6; 7 ] };
    ]
  in
  List.iter
    (fun directive ->
      let w = Codec.Writer.create () in
      Guidance.write_directive w directive;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      checkb "directive roundtrips" true (Guidance.read_directive r = directive))
    directives

(* ---- Allocate ---------------------------------------------------------------- *)

let test_allocate_uniform () =
  let tasks = List.init 4 Allocate.task in
  let allocation = Allocate.allocate Allocate.Uniform ~nodes:8 tasks in
  List.iter (fun (_, n) -> checki "equal split" 2 n) allocation

let test_allocate_greedy_concentrates () =
  let tasks = List.init 3 Allocate.task in
  Allocate.observe_reward (List.nth tasks 1) 10.0;
  Allocate.observe_reward (List.nth tasks 0) 1.0;
  Allocate.observe_reward (List.nth tasks 2) 1.0;
  let allocation = Allocate.allocate Allocate.Greedy ~nodes:6 tasks in
  checki "all on the best" 6 (List.assoc 1 allocation);
  checki "none elsewhere" 0 (List.assoc 0 allocation)

let test_allocate_mean_variance_diversifies () =
  let tasks = List.init 3 Allocate.task in
  (* Task 0: high mean, huge variance.  Task 1: moderate, steady. *)
  List.iter (Allocate.observe_reward (List.nth tasks 0)) [ 20.0; 0.0; 0.0; 20.0 ];
  List.iter (Allocate.observe_reward (List.nth tasks 1)) [ 5.0; 5.0; 5.0; 5.0 ];
  List.iter (Allocate.observe_reward (List.nth tasks 2)) [ 0.1; 0.1; 0.1; 0.1 ];
  let allocation =
    Allocate.allocate (Allocate.Mean_variance { risk_aversion = 1.0 }) ~nodes:12 tasks
  in
  let n0 = List.assoc 0 allocation and n1 = List.assoc 1 allocation in
  checkb "steady task beats volatile despite lower mean" true (n1 > n0);
  checkb "volatile task not starved" true (n0 >= 0);
  checki "sums to nodes" 12 (List.fold_left (fun acc (_, n) -> acc + n) 0 allocation)

let prop_allocate_sums_and_covers =
  QCheck.Test.make ~name:"allocation covers tasks and sums to nodes" ~count:200
    QCheck.(triple (int_range 1 8) (int_range 0 64) (int_range 0 2))
    (fun (n_tasks, nodes, policy_idx) ->
      let policy =
        match policy_idx with
        | 0 -> Allocate.Uniform
        | 1 -> Allocate.Greedy
        | _ -> Allocate.Mean_variance { risk_aversion = 0.5 }
      in
      let rng = Rng.create (n_tasks + nodes) in
      let tasks = List.init n_tasks Allocate.task in
      List.iter
        (fun t ->
          for _ = 1 to Rng.int rng 4 do
            Allocate.observe_reward t (Rng.float rng 10.0)
          done)
        tasks;
      let allocation = Allocate.allocate policy ~nodes tasks in
      List.length allocation = n_tasks
      && List.fold_left (fun acc (_, n) -> acc + n) 0 allocation = nodes
      && List.for_all (fun (_, n) -> n >= 0) allocation)

(* ---- Protocol ------------------------------------------------------------------ *)

let test_protocol_roundtrips () =
  let r = run_once Corpus.parser [| 1; 2; 3 |] in
  let trace = trace_of Corpus.parser r in
  let sampled =
    Sampling.sample (Rng.create 1) ~rate:3 ~full_path:r.Interp.full_path
      ~outcome:r.Interp.outcome
  in
  let fixes =
    Fixgen.propose ~program:Corpus.parser ~deadlock_patterns:[ [ 0; 1 ] ]
      ~crashes:[ parser_crash_evidence () ] ~existing:[] ~next_epoch:1 ()
  in
  let messages =
    [
      Protocol.Trace_upload (Softborg_trace.Wire.encode trace);
      Protocol.Sampled_report { program_digest = "d"; report = sampled };
      Protocol.Fix_update
        { program_digest = "d"; epoch = 2; fixes; canary = []; canary_mils = 0; pressure = 0 };
      Protocol.Guidance_update
        {
          program_digest = "d";
          directives = [ Guidance.Probe_schedules { inputs = [| 0 |]; seeds = [ 1 ] } ];
          pressure = 2;
        };
      Protocol.Pressure_update { level = 3 };
    ]
  in
  List.iter
    (fun message ->
      match Protocol.decode (Protocol.encode message) with
      | Ok back -> checkb (Protocol.message_name message ^ " roundtrips") true (back = message)
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    messages

let test_protocol_rejects_garbage () =
  match Protocol.decode "\xffgarbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded garbage"

(* ---- Trace store ------------------------------------------------------------------ *)

module Trace_store = Softborg_hive.Trace_store
module Report = Softborg_hive.Report

let test_store_dedups_identical_content () =
  let store = Trace_store.create () in
  let r = run_once Corpus.fig2_write [| 5 |] in
  (* Same content from two different pods must deduplicate. *)
  let t1 = Trace.of_result ~program_digest:"d" ~pod:1 ~fix_epoch:0 r in
  let t2 = Trace.of_result ~program_digest:"d" ~pod:2 ~fix_epoch:0 r in
  checkb "first is novel" true (Trace_store.admit store t1 = Trace_store.Novel);
  checkb "second is duplicate" true (Trace_store.admit store t2 = Trace_store.Duplicate 2);
  checki "one distinct" 1 (Trace_store.distinct store);
  checki "two received" 2 (Trace_store.received store);
  checkb "dedup ratio ~2" true (Trace_store.dedup_ratio store > 1.9);
  checki "multiplicity" 2 (Trace_store.multiplicity store t1)

let test_store_distinguishes_content () =
  let store = Trace_store.create () in
  let admit inputs =
    let r = run_once Corpus.fig2_write [| inputs |] in
    ignore (Trace_store.admit store (Trace.of_result ~program_digest:"d" ~pod:1 ~fix_epoch:0 r))
  in
  admit 5;
  admit (-1);
  admit 200;
  checki "three distinct paths stored" 3 (Trace_store.distinct store)

let test_store_heaviest () =
  let store = Trace_store.create () in
  let admit inputs =
    let r = run_once Corpus.fig2_write [| inputs |] in
    ignore (Trace_store.admit store (Trace.of_result ~program_digest:"d" ~pod:1 ~fix_epoch:0 r))
  in
  for _ = 1 to 5 do
    admit 5
  done;
  admit (-1);
  match Trace_store.heaviest store ~n:1 with
  | [ (_, 5) ] -> ()
  | other -> Alcotest.failf "expected the hot path with count 5, got %d entries" (List.length other)

let test_store_byte_counters_match_wire () =
  (* Regression for the single-encode admit rewrite: the byte counters
     must equal the actual per-upload wire sizes, including pods whose
     varint needs 1, 2 and 3 bytes. *)
  let store = Trace_store.create () in
  let r5 = run_once Corpus.fig2_write [| 5 |] in
  let r200 = run_once Corpus.fig2_write [| 200 |] in
  let uploads =
    [
      Trace.of_result ~program_digest:"d" ~pod:1 ~fix_epoch:0 r5;
      Trace.of_result ~program_digest:"d" ~pod:200 ~fix_epoch:0 r5;
      Trace.of_result ~program_digest:"d" ~pod:70_000 ~fix_epoch:0 r5;
      Trace.of_result ~program_digest:"d" ~pod:70_000 ~fix_epoch:0 r200;
    ]
  in
  let novel_bytes = ref 0 in
  let total_bytes = ref 0 in
  List.iter
    (fun trace ->
      let wire_size = String.length (Wire.encode trace) in
      total_bytes := !total_bytes + wire_size;
      match Trace_store.admit store trace with
      | Trace_store.Novel -> novel_bytes := !novel_bytes + wire_size
      | Trace_store.Duplicate _ -> ())
    uploads;
  checki "bytes received match wire sizes" !total_bytes (Trace_store.bytes_received store);
  checki "bytes stored match novel wire sizes" !novel_bytes (Trace_store.bytes_stored store);
  checki "two distinct contents" 2 (Trace_store.distinct store)

let test_store_admit_keyed_matches_content_key () =
  let store = Trace_store.create () in
  let r = run_once Corpus.fig2_write [| 5 |] in
  let t1 = Trace.of_result ~program_digest:"d" ~pod:1 ~fix_epoch:0 r in
  let t2 = Trace.of_result ~program_digest:"d" ~pod:9 ~fix_epoch:0 r in
  let key1, adm1 = Trace_store.admit_keyed store t1 in
  let key2, adm2 = Trace_store.admit_keyed store t2 in
  checkb "keys agree across pods" true (String.equal key1 key2);
  checkb "key equals content_key" true (String.equal key1 (Trace_store.content_key t1));
  checkb "first novel" true (adm1 = Trace_store.Novel);
  checkb "second duplicate" true (adm2 = Trace_store.Duplicate 2)

let test_knowledge_replay_cache_skips_replay () =
  let k = Knowledge.create Corpus.fig2_write in
  let r = run_once Corpus.fig2_write [| 5 |] in
  for pod = 1 to 3 do
    checkb "ingest ok" true (Knowledge.ingest_trace k (trace_of ~pod Corpus.fig2_write r) = Ok ())
  done;
  checki "two cache hits" 2 (Knowledge.replay_cache_hits k);
  let tree = Knowledge.tree k in
  checki "all three merged" 3 (Exec_tree.n_executions tree);
  checki "one distinct path" 1 (Exec_tree.n_distinct_paths tree);
  (* A disabled cache behaves identically, minus the hits. *)
  let k0 = Knowledge.create ~replay_cache:0 Corpus.fig2_write in
  for pod = 1 to 3 do
    ignore (Knowledge.ingest_trace k0 (trace_of ~pod Corpus.fig2_write r))
  done;
  checki "no hits when disabled" 0 (Knowledge.replay_cache_hits k0);
  checki "same executions" 3 (Exec_tree.n_executions (Knowledge.tree k0));
  checki "same distinct paths" 1 (Exec_tree.n_distinct_paths (Knowledge.tree k0))

let test_knowledge_replay_cache_cleared_on_epoch () =
  let k = Knowledge.create Corpus.fig2_write in
  let r = run_once Corpus.fig2_write [| 5 |] in
  ignore (Knowledge.ingest_trace k (trace_of ~pod:1 Corpus.fig2_write r));
  ignore (Knowledge.ingest_trace k (trace_of ~pod:2 Corpus.fig2_write r));
  checki "one hit before epoch bump" 1 (Knowledge.replay_cache_hits k);
  (* New epoch can change replay hooks: the cache must not serve stale
     reconstructions. *)
  ignore (Knowledge.add_fix k (Fixgen.Deadlock_immunity [ 0; 1 ]));
  ignore (Knowledge.ingest_trace k (trace_of ~pod:3 Corpus.fig2_write r));
  checki "no hit right after epoch bump" 1 (Knowledge.replay_cache_hits k);
  ignore (Knowledge.ingest_trace k (trace_of ~pod:4 Corpus.fig2_write r));
  checki "cache refills afterwards" 2 (Knowledge.replay_cache_hits k)

let test_knowledge_store_accounting () =
  let k = Knowledge.create Corpus.fig2_write in
  for _ = 1 to 50 do
    let r = run_once Corpus.fig2_write [| 5 |] in
    ignore (Knowledge.ingest_trace k (trace_of Corpus.fig2_write r))
  done;
  let store = Knowledge.store k in
  checki "50 uploads" 50 (Trace_store.received store);
  checki "one distinct content" 1 (Trace_store.distinct store);
  checkb "dedup saves ~50x" true (Trace_store.dedup_ratio store > 40.0)

(* ---- Report ------------------------------------------------------------------------ *)

let test_report_renders_everything () =
  let k = Knowledge.create Corpus.parser in
  ingest_n k Corpus.parser ~inputs_for:(fun _ -> Array.copy Corpus.parser_trigger) 3;
  let rng = Rng.create 1 in
  ingest_n k Corpus.parser ~inputs_for:(fun _ -> Array.init 3 (fun _ -> Rng.int_in rng 0 100)) 50;
  ignore (Knowledge.analyze k);
  (match
     Prover.attempt_assert_safety ~program:Corpus.parser ~tree:(Knowledge.tree k)
       ~crash_observations:3 ~epoch:(Knowledge.epoch k) ()
   with
  | Some proof -> Knowledge.record_proof k proof
  | None -> ());
  let report = Report.render k in
  let contains needle =
    let n = String.length needle and h = String.length report in
    let rec loop i = i + n <= h && (String.sub report i n = needle || loop (i + 1)) in
    loop 0
  in
  checkb "names the program" true (contains "parser");
  checkb "has bucket section" true (contains "Failure buckets");
  checkb "lists the guard fix" true (contains "guard[");
  checkb "has tree stats" true (contains "distinct paths");
  checkb "has store stats" true (contains "dedup");
  checkb "summary line" true
    (String.length (Report.summary_line k) > 10)

(* ---- Hive service ----------------------------------------------------------------- *)

let test_hive_end_to_end_fix_distribution () =
  let sim = Sim.create () in
  let hive = Hive.create ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 3) () in
  Hive.attach_pod hive hive_end;
  let received_fixes = ref [] in
  Transport.on_receive pod_end (fun payload ->
      match Protocol.decode payload with
      | Ok (Protocol.Fix_update { fixes; _ }) -> received_fixes := fixes @ !received_fixes
      | _ -> ());
  (* Pod uploads a crashing trace. *)
  let r = run_once Corpus.parser Corpus.parser_trigger in
  let trace = trace_of Corpus.parser r in
  Transport.send pod_end
    (Protocol.encode (Protocol.Trace_upload (Softborg_trace.Wire.encode trace)));
  Sim.run sim;
  Hive.tick hive;
  Sim.run sim;
  checkb "pod received a fix update" true (!received_fixes <> []);
  checkb "fix set includes a guard or suppression" true
    (List.exists
       (fun f ->
         match f.Fixgen.kind with
         | Fixgen.Input_guard _ | Fixgen.Crash_suppression _ -> true
         | _ -> false)
       !received_fixes);
  let stats = Hive.stats hive in
  checki "one trace ingested" 1 stats.Hive.traces_received;
  checkb "fixes deployed counted" true (stats.Hive.fixes_deployed >= 1)

let test_hive_wer_mode_uses_human_delay () =
  let config =
    { (Hive.default_config Hive.Wer) with Hive.human_fix_threshold = 2; human_fix_delay = 100.0 }
  in
  let sim = Sim.create () in
  let hive = Hive.create ~config ~sim () in
  let k = Hive.register_program hive Corpus.parser in
  let pod_end, hive_end = Transport.endpoint_pair ~sim ~rng:(Rng.create 5) () in
  Hive.attach_pod hive hive_end;
  for i = 1 to 3 do
    let r = run_once ~seed:i Corpus.parser Corpus.parser_trigger in
    let trace = Softborg_trace.Anonymize.apply Softborg_trace.Anonymize.Outcome_only
        (trace_of Corpus.parser r)
    in
    Transport.send pod_end
      (Protocol.encode (Protocol.Trace_upload (Softborg_trace.Wire.encode trace)))
  done;
  Sim.run sim;
  Hive.tick hive;
  (* The human fix is scheduled but lands only after the delay. *)
  checki "no fix yet" 0 (List.length (Knowledge.fixes k));
  Sim.run sim;
  checkb "human fix landed after delay" true (Knowledge.fixes k <> []);
  checkb "hive scheduled exactly one human fix" true
    ((Hive.stats hive).Hive.human_fixes_scheduled = 1)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_hive"
    [
      ( "isolate",
        [
          Alcotest.test_case "localizes parser bug" `Quick test_isolate_localizes_parser_bug;
          Alcotest.test_case "top predicate" `Quick test_isolate_top_predicate_positive;
          Alcotest.test_case "counts" `Quick test_isolate_counts;
          Alcotest.test_case "no failures" `Quick test_isolate_no_failures_no_positive_score;
          Alcotest.test_case "from sampled" `Quick test_isolate_from_sampled_reports;
        ] );
      ( "fixgen",
        [
          Alcotest.test_case "input guard" `Quick test_fixgen_derives_input_guard;
          Alcotest.test_case "deadlock immunity" `Quick test_fixgen_deadlock_immunity;
          Alcotest.test_case "dedupes" `Quick test_fixgen_dedupes_existing;
          Alcotest.test_case "multithreaded suppression" `Quick
            test_fixgen_multithreaded_falls_back_to_suppression;
          Alcotest.test_case "wire roundtrip" `Quick test_fix_wire_roundtrip;
          Alcotest.test_case "epoch filtering" `Quick test_runtime_hooks_epoch_filtering;
        ] );
      ( "knowledge",
        [
          Alcotest.test_case "ingest builds tree" `Quick test_knowledge_ingest_builds_tree;
          Alcotest.test_case "buckets crashes" `Quick test_knowledge_buckets_crashes;
          Alcotest.test_case "analyze bumps epoch" `Quick test_knowledge_analyze_bumps_epoch;
          Alcotest.test_case "replay respects epoch" `Quick
            test_knowledge_replay_respects_fix_epoch;
          Alcotest.test_case "deadlock buckets" `Quick test_knowledge_deadlock_buckets;
        ] );
      ( "prover",
        [
          Alcotest.test_case "proves fig2" `Quick test_prover_proves_fig2;
          Alcotest.test_case "refuses buggy" `Quick test_prover_refuses_buggy_program;
          Alcotest.test_case "symbolic counterexample" `Quick
            test_prover_symbolic_counterexample_blocks_proof;
          Alcotest.test_case "deadlock-free lockless" `Quick
            test_prover_deadlock_freedom_lockless;
          Alcotest.test_case "blocked by cycle" `Quick
            test_prover_deadlock_freedom_blocked_by_cycle;
          Alcotest.test_case "explores schedules" `Quick
            test_prover_deadlock_freedom_explores_schedules;
          Alcotest.test_case "invalidation" `Quick test_proof_invalidation;
        ] );
      ( "guidance",
        [
          Alcotest.test_case "covers gaps" `Quick test_guidance_covers_gaps;
          Alcotest.test_case "exclude respected" `Quick test_guidance_exclude_respected;
          Alcotest.test_case "pool deterministic" `Quick test_guidance_pool_deterministic;
          Alcotest.test_case "memo reused" `Quick test_guidance_memo_reused;
          Alcotest.test_case "sublinear counters" `Quick test_guidance_sublinear_counters;
          Alcotest.test_case "wire roundtrip" `Quick test_directive_wire_roundtrip;
        ] );
      ( "allocate",
        [
          Alcotest.test_case "uniform" `Quick test_allocate_uniform;
          Alcotest.test_case "greedy concentrates" `Quick test_allocate_greedy_concentrates;
          Alcotest.test_case "mean-variance diversifies" `Quick
            test_allocate_mean_variance_diversifies;
          q prop_allocate_sums_and_covers;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrips" `Quick test_protocol_roundtrips;
          Alcotest.test_case "rejects garbage" `Quick test_protocol_rejects_garbage;
        ] );
      ( "trace_store",
        [
          Alcotest.test_case "dedups identical content" `Quick test_store_dedups_identical_content;
          Alcotest.test_case "distinguishes content" `Quick test_store_distinguishes_content;
          Alcotest.test_case "heaviest" `Quick test_store_heaviest;
          Alcotest.test_case "byte counters match wire" `Quick
            test_store_byte_counters_match_wire;
          Alcotest.test_case "admit_keyed matches content_key" `Quick
            test_store_admit_keyed_matches_content_key;
          Alcotest.test_case "replay cache skips replay" `Quick
            test_knowledge_replay_cache_skips_replay;
          Alcotest.test_case "replay cache cleared on epoch" `Quick
            test_knowledge_replay_cache_cleared_on_epoch;
          Alcotest.test_case "knowledge accounting" `Quick test_knowledge_store_accounting;
        ] );
      ( "report",
        [ Alcotest.test_case "renders everything" `Quick test_report_renders_everything ] );
      ( "service",
        [
          Alcotest.test_case "end-to-end fix distribution" `Quick
            test_hive_end_to_end_fix_distribution;
          Alcotest.test_case "WER human delay" `Quick test_hive_wer_mode_uses_human_delay;
        ] );
    ]
