(* Overload protection: admission control and shedding at the hive,
   backpressure and adaptive sampling at the pods, poison-trace
   quarantine at the decode boundary, transport dead-lettering, and
   config validation.  The central invariants: the ingest queue never
   exceeds its bound, failure-class uploads are never shed before
   success-class ones, poison frames can neither crash the hive nor
   corrupt its knowledge, and at pressure level 0 the whole layer is
   byte-invisible. *)

module Rng = Softborg_util.Rng
module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec
module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Exec_tree = Softborg_tree.Exec_tree
module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Hive = Softborg_hive.Hive
module Knowledge = Softborg_hive.Knowledge
module Checkpoint = Softborg_hive.Checkpoint
module Protocol = Softborg_hive.Protocol
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---- Config validation ------------------------------------------------ *)

let field_of = function Ok _ -> "ok" | Error { Link.field; _ } -> field
let tfield_of = function Ok _ -> "ok" | Error { Transport.field; _ } -> field

let test_link_config_validation () =
  let base = Link.default_config in
  Alcotest.(check string) "valid accepted" "ok" (field_of (Link.validate_config base));
  List.iter
    (fun (label, config, field) ->
      Alcotest.(check string) label field (field_of (Link.validate_config config)))
    [
      ("negative drop", { base with Link.drop_probability = -0.1 }, "drop_probability");
      ("drop above one", { base with Link.drop_probability = 1.5 }, "drop_probability");
      ("nan drop", { base with Link.drop_probability = Float.nan }, "drop_probability");
      ("negative mean", { base with Link.mean_latency = -1.0 }, "mean_latency");
      ("infinite mean", { base with Link.mean_latency = Float.infinity }, "mean_latency");
      ("negative floor", { base with Link.min_latency = -0.01 }, "min_latency");
    ];
  (* Construction sites enforce the same rule. *)
  let sim = Sim.create () in
  (match
     Link.create ~config:{ base with Link.drop_probability = 2.0 } ~sim ~rng:(Rng.create 1) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Link.create accepted an invalid config");
  let link = Link.create ~sim ~rng:(Rng.create 1) () in
  match Link.set_config link { base with Link.mean_latency = Float.nan } with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_config accepted an invalid config"

let test_transport_config_validation () =
  let base = Transport.default_config in
  Alcotest.(check string) "valid accepted" "ok" (tfield_of (Transport.validate_config base));
  List.iter
    (fun (label, config, field) ->
      Alcotest.(check string) label field (tfield_of (Transport.validate_config config)))
    [
      ("zero timeout", { base with Transport.retry_timeout = 0.0 }, "retry_timeout");
      ("negative timeout", { base with Transport.retry_timeout = -1.0 }, "retry_timeout");
      ("nan timeout", { base with Transport.retry_timeout = Float.nan }, "retry_timeout");
      ("negative retries", { base with Transport.max_retries = -1 }, "max_retries");
      ("backoff below one", { base with Transport.backoff = 0.5 }, "backoff");
      ("nan backoff", { base with Transport.backoff = Float.nan }, "backoff");
      ( "bad nested link",
        { base with Transport.link = { base.Transport.link with Link.drop_probability = 7.0 } },
        "link.drop_probability" );
    ];
  match
    Transport.endpoint_pair
      ~config:{ base with Transport.backoff = 0.0 }
      ~sim:(Sim.create ()) ~rng:(Rng.create 1) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "endpoint_pair accepted an invalid config"

(* ---- Transport dead-letter -------------------------------------------- *)

let test_dead_letter_callback () =
  (* A link dropping everything with a tiny retry budget: every send is
     abandoned, and each abandonment must surface through on_give_up
     with its payload. *)
  let sim = Sim.create () in
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 1.0; mean_latency = 0.01; min_latency = 0.001 };
      retry_timeout = 0.05;
      max_retries = 2;
    }
  in
  let a, _b = Transport.endpoint_pair ~config ~sim ~rng:(Rng.create 5) () in
  let dead = ref [] in
  Transport.on_give_up a (fun payload -> dead := payload :: !dead);
  let payloads = List.init 7 (fun i -> Printf.sprintf "upload-%d" i) in
  List.iter (Transport.send a) payloads;
  Sim.run sim;
  checki "every send gave up" 7 (Transport.stats a).Transport.gave_up;
  checki "every give-up dead-lettered" 7 (List.length !dead);
  Alcotest.(check (list string))
    "payloads preserved" (List.sort compare payloads)
    (List.sort compare !dead)

let test_dead_letter_resend_after_heal () =
  (* A dead-lettered payload re-sent after the link heals is delivered
     exactly once: the re-send has a fresh sequence number and budget. *)
  let sim = Sim.create () in
  let config =
    {
      Transport.default_config with
      Transport.link = { Link.drop_probability = 1.0; mean_latency = 0.01; min_latency = 0.001 };
      retry_timeout = 0.05;
      max_retries = 1;
    }
  in
  let a, b = Transport.endpoint_pair ~config ~sim ~rng:(Rng.create 6) () in
  let received = ref [] in
  Transport.on_receive b (fun payload -> received := payload :: !received);
  let dead = ref [] in
  Transport.on_give_up a (fun payload -> dead := payload :: !dead);
  Transport.send a "precious";
  Sim.run sim;
  checki "abandoned under total loss" 1 (List.length !dead);
  checki "nothing delivered" 0 (List.length !received);
  (match Transport.out_link a with
  | Some link -> Link.set_config link Link.lan
  | None -> Alcotest.fail "endpoint has no link");
  List.iter (Transport.send a) !dead;
  Sim.run sim;
  Alcotest.(check (list string)) "re-send delivered once" [ "precious" ] !received

(* ---- Decode caps and quarantine boundary ------------------------------ *)

let run_once program inputs =
  Interp.run ~program ~env:(Env.make ~seed:3 ~inputs ()) ~sched:Sched.Round_robin ()

let success_trace () =
  let r = run_once Corpus.parser [| 1; 2; 3 |] in
  Trace.of_result ~program_digest:(Ir.digest Corpus.parser) ~pod:1 ~fix_epoch:0 r

let failure_trace () =
  let r = run_once Corpus.parser Corpus.parser_trigger in
  let trace = Trace.of_result ~program_digest:(Ir.digest Corpus.parser) ~pod:1 ~fix_epoch:0 r in
  checkb "trigger run fails" true (Outcome.is_failure trace.Trace.outcome);
  trace

let test_caps_reject_oversize () =
  let caps = { Wire.default_caps with Wire.max_message_bytes = 16 } in
  (match Wire.decode ~caps (String.make 64 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize frame decoded");
  (match Protocol.decode ~caps (String.make 64 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize protocol frame decoded");
  (* Honest traffic decodes under default caps. *)
  let encoded = Wire.encode (success_trace ()) in
  match Wire.decode ~caps:Wire.default_caps encoded with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest trace rejected: %a" Wire.pp_error e

let test_caps_reject_branch_bits () =
  let trace = success_trace () in
  checkb "trace has branch bits" true (Bitvec.length trace.Trace.bits > 0);
  let caps = { Wire.default_caps with Wire.max_branch_bits = 0 } in
  match Wire.decode ~caps (Wire.encode trace) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-cap branch bits decoded"

let test_caps_reject_lock_events () =
  let w = Codec.Writer.create () in
  Wire.encode_outcome w
    (Outcome.Deadlock { waiting = List.init 32 (fun i -> (i, i + 1)) });
  let encoded = Codec.Writer.contents w in
  let caps = { Wire.default_caps with Wire.max_lock_events = 4 } in
  (match Wire.decode_outcome ~caps (Codec.Reader.of_string encoded) with
  | exception Codec.Malformed _ -> ()
  | _ -> Alcotest.fail "over-cap lock set decoded");
  (* Under the cap it still decodes. *)
  match Wire.decode_outcome ~caps:Wire.default_caps (Codec.Reader.of_string encoded) with
  | Outcome.Deadlock { waiting } -> checki "lock set intact" 32 (List.length waiting)
  | _ -> Alcotest.fail "deadlock outcome lost"

(* ---- Byte-mutation fuzz ------------------------------------------------ *)

let mutate s pos byte =
  let b = Bytes.of_string s in
  Bytes.set b (pos mod String.length s) (Char.chr (byte land 0xff));
  Bytes.to_string b

let total_or_fail name decode s =
  match decode s with
  | (_ : (_, _) result) -> true
  | exception e -> QCheck.Test.fail_reportf "%s raised %s" name (Printexc.to_string e)

let fuzz_wire_mutation =
  let encoded = Wire.encode (success_trace ()) in
  QCheck.Test.make ~name:"wire decode is total under byte mutation" ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos, byte) ->
      let mutated = mutate encoded pos byte in
      total_or_fail "Wire.decode" (Wire.decode ~caps:Wire.default_caps) mutated
      && total_or_fail "Wire.decode (no caps)" Wire.decode mutated)

let fuzz_wire_truncation =
  let encoded = Wire.encode (failure_trace ()) in
  QCheck.Test.make ~name:"valid-prefix truncations rejected cleanly" ~count:200
    QCheck.(int_range 0 (String.length encoded - 1))
    (fun len ->
      let prefix = String.sub encoded 0 len in
      match Wire.decode ~caps:Wire.default_caps prefix with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "strict prefix of %d/%d bytes decoded Ok" len
                  (String.length encoded)
      | exception e ->
        QCheck.Test.fail_reportf "prefix decode raised %s" (Printexc.to_string e))

let fuzz_checkpoint_mutation =
  let k = Knowledge.create Corpus.parser in
  List.iter
    (fun inputs -> ignore (Knowledge.ingest_trace k
         (Trace.of_result ~program_digest:(Knowledge.digest k) ~pod:0 ~fix_epoch:0
            (run_once Corpus.parser inputs))))
    [ [| 1; 2; 3 |]; [| 4; 5; 6 |]; Corpus.parser_trigger ];
  let frame = Checkpoint.encode [ k ] in
  QCheck.Test.make ~name:"checkpoint decode is total under mutation and truncation" ~count:300
    QCheck.(triple small_nat small_nat bool)
    (fun (pos, byte, truncate) ->
      let attacked =
        if truncate then String.sub frame 0 (pos mod String.length frame)
        else mutate frame pos byte
      in
      total_or_fail "Checkpoint.decode" Checkpoint.decode attacked)

let fuzz_protocol_garbage =
  QCheck.Test.make ~name:"protocol decode is total on arbitrary bytes" ~count:200
    QCheck.string
    (fun s -> total_or_fail "Protocol.decode" (Protocol.decode ~caps:Wire.default_caps) s)

(* ---- Hive admission control ------------------------------------------- *)

(* A hive wired to [n] pod-side endpoints over lossless LAN links, with
   a service interval so large that nothing drains during the test —
   the queue state is fully controlled by what the test sends. *)
let overloaded_hive ?(n = 2) ?(overload = Hive.default_overload_config) () =
  let sim = Sim.create () in
  let rng = Rng.create 17 in
  let config = { (Hive.default_config Hive.Full) with Hive.overload = Some overload } in
  let hive = Hive.create ~config ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  let transport_config = { Transport.default_config with Transport.link = Link.lan } in
  let pods =
    List.init n (fun _ ->
        let pod_end, hive_end =
          Transport.endpoint_pair ~config:transport_config ~sim ~rng:(Rng.split rng) ()
        in
        Hive.attach_pod hive hive_end;
        pod_end)
  in
  (sim, hive, pods)

let upload trace = Protocol.encode (Protocol.Trace_upload (Wire.encode trace))

let test_queue_never_exceeds_bound () =
  let overload =
    { Hive.default_overload_config with Hive.queue_bound = 4; service_interval = 1000.0 }
  in
  let sim, hive, pods = overloaded_hive ~n:1 ~overload () in
  let pod = List.hd pods in
  let ok = upload (success_trace ()) in
  (* First upload is processed on arrival; the rest pile up. *)
  for _ = 1 to 10 do
    Transport.send pod ok
  done;
  Sim.run ~until:5.0 sim;
  let stats = Hive.stats hive in
  checki "queue clamped at the bound" 4 (Hive.queue_length hive);
  checki "peak equals the bound" 4 stats.Hive.peak_queue_depth;
  checki "overflow shed" 5 stats.Hive.shed_success;
  checki "one processed at arrival" 1 stats.Hive.traces_received;
  checki "pressure saturated" 3 (Hive.pressure_level hive);
  (* Let the drain work through the backlog: pressure recovers to 0. *)
  Sim.run ~until:10_000.0 sim;
  checki "queue drained" 0 (Hive.queue_length hive);
  checki "pressure recovered" 0 (Hive.pressure_level hive);
  checki "backlog ingested" 5 (Hive.stats hive).Hive.traces_received

let test_prefer_failures_sheds_successes_first () =
  let overload =
    { Hive.default_overload_config with Hive.queue_bound = 3; service_interval = 1000.0 }
  in
  let sim, hive, pods = overloaded_hive ~n:1 ~overload () in
  let pod = List.hd pods in
  let ok = upload (success_trace ()) in
  let bad = upload (failure_trace ()) in
  (* One processed at arrival, then fill the queue with successes and
     push failures into a full queue: every failure must displace a
     queued success. *)
  List.iter (Transport.send pod) [ ok; ok; ok; ok; bad; bad; bad ];
  Sim.run ~until:5.0 sim;
  let stats = Hive.stats hive in
  checki "successes shed" 3 stats.Hive.shed_success;
  checki "no failure shed" 0 stats.Hive.shed_failure;
  Sim.run ~until:10_000.0 sim;
  (* All three failures survived the shedding and reached knowledge. *)
  match Hive.knowledge hive ~digest:(Ir.digest Corpus.parser) with
  | None -> Alcotest.fail "knowledge missing"
  | Some k -> checki "all failures ingested" 3 (Knowledge.failures_observed k)

let test_drop_policies () =
  let run policy =
    let overload =
      {
        Hive.default_overload_config with
        Hive.queue_bound = 2;
        service_interval = 1000.0;
        shed_policy = policy;
      }
    in
    let sim, hive, pods = overloaded_hive ~n:1 ~overload () in
    let pod = List.hd pods in
    let ok = upload (success_trace ()) in
    List.iter (Transport.send pod) [ ok; ok; ok; ok; ok ];
    Sim.run ~until:5.0 sim;
    Hive.stats hive
  in
  let newest = run Hive.Drop_newest in
  checki "drop-newest sheds overflow" 2 newest.Hive.shed_success;
  let oldest = run Hive.Drop_oldest in
  checki "drop-oldest sheds the same count" 2 oldest.Hive.shed_success;
  checki "drop-oldest keeps the bound" 2 oldest.Hive.peak_queue_depth

let test_poison_quarantine_and_mute () =
  let overload =
    {
      Hive.default_overload_config with
      Hive.quarantine_threshold = 3;
      mute_cooldown = 50.0;
    }
  in
  let sim, hive, pods = overloaded_hive ~n:2 ~overload () in
  let poison_pod, honest_pod = (List.nth pods 0, List.nth pods 1) in
  let k =
    match Hive.knowledge hive ~digest:(Ir.digest Corpus.parser) with
    | Some k -> k
    | None -> Alcotest.fail "knowledge missing"
  in
  let version_before = Exec_tree.version (Knowledge.tree k) in
  let epoch_before = Knowledge.epoch k in
  (* A fuzzing pod hurls garbage: raw bytes, bad tags, an oversize
     frame, and a trace whose lock set exceeds the caps. *)
  let huge_deadlock =
    let w = Codec.Writer.create () in
    Codec.Writer.byte w 0;
    Codec.Writer.bytes w (String.make 8192 '\xAB');
    Codec.Writer.contents w
  in
  List.iter (Transport.send poison_pod)
    [ "\xff\xff\xff"; "garbage"; huge_deadlock; "\x02"; String.make 200 '\x00' ];
  Sim.run ~until:5.0 sim;
  let stats = Hive.stats hive in
  checkb "poison quarantined" true (stats.Hive.quarantined_frames >= 3);
  checki "offender muted" 1 stats.Hive.pods_muted;
  checkb "post-mute frames dropped unexamined" true (stats.Hive.muted_drops >= 1);
  checki "knowledge tree untouched" version_before (Exec_tree.version (Knowledge.tree k));
  checki "knowledge epoch untouched" epoch_before (Knowledge.epoch k);
  checki "no poison reached ingestion" 0 stats.Hive.traces_received;
  (* The honest pod's uploads still land while the offender is muted. *)
  Transport.send honest_pod (upload (failure_trace ()));
  Sim.run ~until:10.0 sim;
  checki "honest upload ingested" 1 (Hive.stats hive).Hive.traces_received;
  (* After the cooldown the offender is readmitted. *)
  Sim.schedule sim ~delay:60.0 (fun () -> Transport.send poison_pod (upload (success_trace ())));
  Sim.run sim;
  checki "offender readmitted after cooldown" 2 (Hive.stats hive).Hive.traces_received

(* ---- Platform integration --------------------------------------------- *)

let quick_config ?mode program =
  let config = Scenario.single_program ?mode program in
  {
    config with
    Platform.n_pods = 3;
    duration = 120.0;
    sample_interval = 30.0;
    pod_config =
      {
        config.Platform.pod_config with
        Pod.arrival_rate = 1.0;
        workload = Workload.Uniform_inputs { lo = 0; hi = 40 };
      };
  }

let test_pressure_zero_byte_identity () =
  (* The acceptance bar for the whole layer: with overload protection
     enabled but never pressured (instant service, so the queue never
     forms), the full formatted report is byte-identical to a run
     without the layer. *)
  let baseline =
    Format.asprintf "%a" Platform.pp_report (Platform.run (quick_config Corpus.parser))
  in
  let overload = { Hive.default_overload_config with Hive.service_interval = 0.0 } in
  let guarded =
    Format.asprintf "%a" Platform.pp_report
      (Platform.run (Scenario.with_overload ~overload (quick_config Corpus.parser)))
  in
  checkb "report not empty" true (String.length baseline > 0);
  Alcotest.(check string) "pressure-0 report byte-identical" baseline guarded

let test_overload_spike_recovers () =
  (* An arrival spike ≥4× nominal: 12 extra pods join a 3-pod fleet.
     The queue must respect its bound, shedding must be success-only,
     pods must thin their uploads under pressure, and pressure must be
     back to 0 by the end of the run. *)
  let overload =
    {
      Hive.default_overload_config with
      Hive.queue_bound = 32;
      service_interval = 0.2;
    }
  in
  let config =
    Scenario.overload_spike ~spike_pods:12 ~spike_start:30.0 ~spike_end:75.0
      (Scenario.with_overload ~overload (quick_config Corpus.parser))
  in
  let report = Platform.run config in
  let h = report.Platform.hive_stats in
  checkb "queue bounded" true (h.Hive.peak_queue_depth <= 32);
  checkb "spike saturated the queue" true (h.Hive.peak_queue_depth = 32);
  checkb "successes shed under the spike" true (h.Hive.shed_success > 0);
  checki "no failure-class upload shed" 0 h.Hive.shed_failure;
  checkb "pressure was signalled" true (h.Hive.pressure_updates_sent > 0);
  let f = report.Platform.final in
  checkb "pods thinned uploads under pressure" true (f.Metrics.thinned_uploads > 0);
  checkb "uploads deferred with backoff" true
    (List.exists (fun m -> m.Pod.deferred_uploads > 0) report.Platform.pod_metrics);
  (* Recovery: the base pods (first three in the fleet) heard the hive
     come back down to level 0 after the spike pods left. *)
  let base_pods =
    List.filteri (fun i _ -> i < 3) report.Platform.pod_metrics
  in
  List.iter (fun m -> checki "pressure recovered to 0" 0 m.Pod.pressure) base_pods;
  (* The spike never broke ingestion: traces still reached knowledge. *)
  checkb "hive kept ingesting" true (h.Hive.traces_received > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_overload"
    [
      ( "config validation",
        [
          Alcotest.test_case "link configs" `Quick test_link_config_validation;
          Alcotest.test_case "transport configs" `Quick test_transport_config_validation;
        ] );
      ( "dead letter",
        [
          Alcotest.test_case "callback under total loss" `Quick test_dead_letter_callback;
          Alcotest.test_case "resend after heal" `Quick test_dead_letter_resend_after_heal;
        ] );
      ( "decode caps",
        [
          Alcotest.test_case "oversize frames" `Quick test_caps_reject_oversize;
          Alcotest.test_case "branch bits" `Quick test_caps_reject_branch_bits;
          Alcotest.test_case "lock events" `Quick test_caps_reject_lock_events;
        ] );
      ( "fuzz",
        [
          q fuzz_wire_mutation; q fuzz_wire_truncation; q fuzz_checkpoint_mutation;
          q fuzz_protocol_garbage;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue bound" `Quick test_queue_never_exceeds_bound;
          Alcotest.test_case "prefer failures" `Quick test_prefer_failures_sheds_successes_first;
          Alcotest.test_case "drop policies" `Quick test_drop_policies;
          Alcotest.test_case "quarantine and mute" `Quick test_poison_quarantine_and_mute;
        ] );
      ( "platform",
        [
          Alcotest.test_case "pressure-0 byte identity" `Quick test_pressure_zero_byte_identity;
          Alcotest.test_case "overload spike recovers" `Quick test_overload_spike_recovers;
        ] );
    ]
