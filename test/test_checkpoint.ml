(* The checkpoint codec battery: snapshot → restore → snapshot must be
   byte-identical, restored trees must satisfy every incremental
   aggregate invariant, restored knowledge must behave exactly like the
   original, and corrupt input must degrade to an error — never a crash
   or a half-restored hive. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Trace = Softborg_trace.Trace
module Exec_tree = Softborg_tree.Exec_tree
module Knowledge = Softborg_hive.Knowledge
module Checkpoint = Softborg_hive.Checkpoint
module Prover = Softborg_hive.Prover
module Hive = Softborg_hive.Hive
module Sim = Softborg_net.Sim
module Codec = Softborg_util.Codec
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let run_once ?(seed = 7) program inputs =
  let env = Env.make ~seed ~inputs () in
  Interp.run ~program ~env ~sched:Sched.Round_robin ()

let trace_of ?(pod = 1) ?(fix_epoch = 0) program r =
  Trace.of_result ~program_digest:(Ir.digest program) ~pod ~fix_epoch r

(* ---- Exec_tree round-trip property ------------------------------------ *)

let tree_bytes t =
  let w = Codec.Writer.create () in
  Exec_tree.write w t;
  Codec.Writer.contents w

let tree_of_bytes s = Exec_tree.read (Codec.Reader.of_string s)

(* Pre-computed (path, outcome) pools, one per program, so each QCheck
   case interleaves merges without re-running the interpreter. *)
let path_pool program inputs_of =
  let rng = Rng.create 1234 in
  List.init 48 (fun i ->
      let r = run_once ~seed:i program (inputs_of rng) in
      (r.Interp.full_path, r.Interp.outcome))

let parser_pool =
  path_pool Corpus.parser (fun rng ->
      if Rng.int rng 6 = 0 then Corpus.parser_trigger
      else Array.init 3 (fun _ -> Rng.int_in rng 0 30))

let fig2_pool = path_pool Corpus.fig2_write (fun rng -> [| Rng.int_in rng (-5) 305 |])

let tree_fingerprint t =
  ( Exec_tree.n_nodes t,
    Exec_tree.n_executions t,
    Exec_tree.n_distinct_paths t,
    Exec_tree.n_edges t,
    Exec_tree.version t,
    Exec_tree.depth t,
    Exec_tree.frontier_size t,
    Exec_tree.outcome_buckets t,
    Exec_tree.is_complete t )

(* Random interleaving of path merges, duplicate merges, infeasibility
   marks, and mid-sequence checkpoints; at every checkpoint the restored
   tree must re-serialize to the same bytes and agree with the walk-the-
   tree oracles. *)
let prop_tree_checkpoint_roundtrip =
  QCheck.Test.make ~name:"tree snapshot/restore round-trips and restores aggregates"
    ~count:500
    QCheck.(triple small_nat (int_range 1 30) bool)
    (fun (seed, n_ops, use_parser) ->
      let pool = if use_parser then parser_pool else fig2_pool in
      let rng = Rng.create (seed * 7919 + 17) in
      let t = Exec_tree.create () in
      let check_roundtrip () =
        let s1 = tree_bytes t in
        let t' = tree_of_bytes s1 in
        let s2 = tree_bytes t' in
        if s1 <> s2 then QCheck.Test.fail_report "re-snapshot not byte-identical";
        if tree_fingerprint t <> tree_fingerprint t' then
          QCheck.Test.fail_report "restored tree differs from original";
        (* Every incremental aggregate of the restored tree must equal
           its full-walk recompute oracle. *)
        if Exec_tree.n_edges t' <> Exec_tree.n_edges_recompute t' then
          QCheck.Test.fail_report "n_edges oracle mismatch";
        if Exec_tree.depth t' <> Exec_tree.depth_recompute t' then
          QCheck.Test.fail_report "depth oracle mismatch";
        if Exec_tree.outcome_buckets t' <> Exec_tree.outcome_buckets_recompute t' then
          QCheck.Test.fail_report "outcome_buckets oracle mismatch";
        if Exec_tree.frontier t' <> Exec_tree.frontier_recompute t' then
          QCheck.Test.fail_report "frontier oracle mismatch";
        (* The rebuilt top-k index must serve exactly the sorted oracle's
           prefixes. *)
        let oracle = Exec_tree.frontier_recompute t' in
        List.iter
          (fun k ->
            let rec take k = function
              | x :: rest when k > 0 -> x :: take (k - 1) rest
              | _ -> []
            in
            if Exec_tree.frontier_top t' k <> take k oracle then
              QCheck.Test.fail_report "frontier_top oracle mismatch after restore")
          [ 0; 1; 8; List.length oracle ];
        if Exec_tree.is_complete t' <> Exec_tree.is_complete_recompute t' then
          QCheck.Test.fail_report "is_complete oracle mismatch";
        if abs_float (Exec_tree.completeness t' -. Exec_tree.completeness_recompute t')
           > 1e-9
        then QCheck.Test.fail_report "completeness oracle mismatch"
      in
      for _ = 1 to n_ops do
        (match Rng.int rng 5 with
        | 0 | 1 | 2 ->
          let path, outcome = List.nth pool (Rng.int rng (List.length pool)) in
          ignore (Exec_tree.add_path t path outcome)
        | 3 -> (
          (* Close a random open gap, as the prover would. *)
          match Exec_tree.frontier t with
          | [] -> ()
          | gaps ->
            let gap = List.nth gaps (Rng.int rng (List.length gaps)) in
            ignore
              (Exec_tree.mark_infeasible t ~prefix:gap.Exec_tree.prefix
                 ~site:gap.Exec_tree.site ~direction:gap.Exec_tree.missing))
        | _ -> check_roundtrip ());
      done;
      check_roundtrip ();
      (* Restored trees must also keep behaving: merging one more path
         into original and restored twins must agree exactly. *)
      let t' = tree_of_bytes (tree_bytes t) in
      let path, outcome = List.nth pool (Rng.int rng (List.length pool)) in
      let a = Exec_tree.add_path t path outcome in
      let b = Exec_tree.add_path t' path outcome in
      a = b && tree_fingerprint t = tree_fingerprint t')

(* ---- Knowledge round-trip --------------------------------------------- *)

let proof_shape (p : Prover.proof) =
  (p.Prover.property, p.Prover.strength, p.Prover.epoch, p.Prover.distinct_paths, p.Prover.valid)

let knowledge_fingerprint k =
  ( Knowledge.digest k,
    Knowledge.epoch k,
    Knowledge.traces_ingested k,
    Knowledge.failures_observed k,
    Knowledge.replay_errors k,
    Exec_tree.version (Knowledge.tree k),
    Exec_tree.n_distinct_paths (Knowledge.tree k),
    ( Knowledge.bucket_counts k,
      List.length (Knowledge.fixes k),
      List.map proof_shape (Knowledge.proofs k),
      Softborg_hive.Trace_store.received (Knowledge.store k),
      Softborg_hive.Trace_store.bytes_received (Knowledge.store k) ) )

let populated_knowledge ?(n = 30) seed =
  let k = Knowledge.create Corpus.parser in
  let rng = Rng.create seed in
  for i = 1 to n do
    let inputs =
      if Rng.int rng 4 = 0 then Corpus.parser_trigger
      else Array.init 3 (fun _ -> Rng.int_in rng 0 30)
    in
    let r = run_once ~seed:i Corpus.parser inputs in
    match Knowledge.ingest_trace k (trace_of ~pod:(i mod 5) Corpus.parser r) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "ingest failed: %s" e
  done;
  ignore (Knowledge.analyze k);
  Knowledge.record_proof k
    {
      Prover.id = 1;
      property = Prover.Assert_safety;
      strength = Prover.Tested { executions = n; schedules = 1 };
      epoch = Knowledge.epoch k;
      distinct_paths = Exec_tree.n_distinct_paths (Knowledge.tree k);
      valid = true;
    };
  k

let test_knowledge_roundtrip () =
  let k = populated_knowledge 42 in
  let s1 = Checkpoint.encode_knowledge k in
  match Checkpoint.decode_knowledge s1 with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok k' ->
    checks "re-snapshot byte-identical" s1 (Checkpoint.encode_knowledge k');
    checkb "observationally identical" true (knowledge_fingerprint k = knowledge_fingerprint k');
    (* The restored base must keep learning exactly like the original:
       same ingest result, same analysis output, same state after. *)
    let r = run_once ~seed:991 Corpus.parser Corpus.parser_trigger in
    let ingest k = Knowledge.ingest_trace k (trace_of ~pod:2 Corpus.parser r) in
    checkb "same ingest result" true (ingest k = ingest k');
    let fixes_a = List.length (Knowledge.analyze k) in
    let fixes_b = List.length (Knowledge.analyze k') in
    checki "same analysis output" fixes_a fixes_b;
    checkb "still identical after new evidence" true
      (knowledge_fingerprint k = knowledge_fingerprint k');
    checks "snapshots still agree" (Checkpoint.encode_knowledge k) (Checkpoint.encode_knowledge k')

let prop_knowledge_roundtrip_random =
  QCheck.Test.make ~name:"knowledge snapshot/restore round-trips byte-identically" ~count:50
    QCheck.(pair small_nat (int_range 1 40))
    (fun (seed, n) ->
      let k = populated_knowledge ~n (seed + 1) in
      let s1 = Checkpoint.encode_knowledge k in
      match Checkpoint.decode_knowledge s1 with
      | Error _ -> false
      | Ok k' ->
        s1 = Checkpoint.encode_knowledge k'
        && knowledge_fingerprint k = knowledge_fingerprint k')

(* ---- Framed checkpoints and the hive ----------------------------------- *)

let test_frame_sorts_by_digest () =
  let ka = populated_knowledge 1 in
  let kb = Knowledge.create Corpus.fig2_write in
  checks "registration order does not matter"
    (Checkpoint.encode [ ka; kb ])
    (Checkpoint.encode [ kb; ka ])

let test_frame_roundtrip () =
  let ka = populated_knowledge 5 in
  let kb = Knowledge.create Corpus.fig2_write in
  let s = Checkpoint.encode [ ka; kb ] in
  match Checkpoint.decode s with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok ks ->
    checki "both restored" 2 (List.length ks);
    checks "re-encode byte-identical" s (Checkpoint.encode ks)

let ingest_everywhere hive ~seed ~n =
  List.iter
    (fun k ->
      let program = Knowledge.program k in
      let rng = Rng.create (seed lxor Hashtbl.hash (Knowledge.digest k)) in
      for i = 1 to n do
        let inputs = Array.init 3 (fun _ -> Rng.int_in rng 0 40) in
        let r = run_once ~seed:(seed + i) program inputs in
        ignore (Knowledge.ingest_trace k (trace_of program r))
      done)
    (Hive.knowledge_list hive)

let test_hive_restore_reverts_knowledge () =
  let sim = Sim.create () in
  let hive = Hive.create ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  ignore (Hive.register_program hive Corpus.fig2_write);
  ingest_everywhere hive ~seed:3 ~n:12;
  let ckpt = Hive.checkpoint hive in
  let at_ckpt = List.map knowledge_fingerprint (Hive.knowledge_list hive) in
  (* Learn more, then crash: the extra knowledge must vanish. *)
  ingest_everywhere hive ~seed:77 ~n:9;
  checkb "hive moved on" true (List.map knowledge_fingerprint (Hive.knowledge_list hive) <> at_ckpt);
  (match Hive.restore hive ckpt with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok n -> checki "both programs restored" 2 n);
  checkb "state reverted to checkpoint" true
    (List.map knowledge_fingerprint (Hive.knowledge_list hive) = at_ckpt);
  checks "re-checkpoint byte-identical" ckpt (Hive.checkpoint hive);
  checki "restore counted" 1 (Hive.stats hive).Hive.restores_completed

let test_hive_restore_keeps_late_programs () =
  let sim = Sim.create () in
  let hive = Hive.create ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  let ckpt = Hive.checkpoint hive in
  ignore (Hive.register_program hive Corpus.fig2_write);
  (match Hive.restore hive ckpt with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok n -> checki "one program in the checkpoint" 1 n);
  checki "late registration survives the restore" 2 (List.length (Hive.knowledge_list hive))

(* ---- Federation shard checkpoints -------------------------------------- *)

module Transport = Softborg_net.Transport
module Protocol = Softborg_hive.Protocol
module Wire = Softborg_trace.Wire
module Federation = Softborg_hive.Federation

let shard_upload_pool =
  let rng = Rng.create 555 in
  Array.init 24 (fun i ->
      let inputs =
        if Rng.int rng 5 = 0 then Corpus.parser_trigger
        else Array.init 3 (fun _ -> Rng.int_in rng 0 30)
      in
      let r = run_once ~seed:i Corpus.parser inputs in
      Protocol.encode
        (Protocol.Trace_upload (Wire.encode (trace_of ~pod:(i mod 4) Corpus.parser r))))

(* Random interleaving of shard-local ingestion, delta flushes, and
   mid-sequence shard checkpoints, across shard counts 1/2/4: at every
   checkpoint the restored shard must re-serialize to the same bytes —
   the shard-local transfer state (pending buffer, delta seq counter)
   round-trips along with the hive knowledge. *)
let prop_shard_checkpoint_roundtrip =
  QCheck.Test.make ~name:"shard snapshot/restore round-trips shard-local state" ~count:500
    QCheck.(triple small_nat (int_range 1 12) (int_range 0 2))
    (fun (seed, n_ops, shard_choice) ->
      let n_shards = [| 1; 2; 4 |].(shard_choice) in
      let sim = Sim.create () in
      let fed =
        Federation.create
          ~config:
            { (Federation.default_config ~n_shards ()) with Federation.synthesize = false }
          ~sim ~rng:(Rng.create (seed + 9)) ()
      in
      ignore (Federation.register_program fed Corpus.parser);
      let rng = Rng.create (seed * 677 + 29) in
      let check_shard i =
        let s1 = Federation.checkpoint_shard fed i in
        (match Federation.restore_shard fed i s1 with
        | Error e -> QCheck.Test.fail_reportf "shard restore failed: %s" e
        | Ok n -> if n <> 1 then QCheck.Test.fail_report "wrong program count restored");
        if Federation.checkpoint_shard fed i <> s1 then
          QCheck.Test.fail_report "shard re-snapshot not byte-identical"
      in
      for _ = 1 to n_ops do
        match Rng.int rng 4 with
        | 0 | 1 ->
          (* Admit a payload directly into a random shard: the ingest
             tap buffers its canonical form for the next delta. *)
          let payload = shard_upload_pool.(Rng.int rng (Array.length shard_upload_pool)) in
          Hive.ingest_payload (Federation.shard_hive fed (Rng.int rng n_shards)) payload
        | 2 ->
          (* Advance the delta exchange so seq counters move. *)
          Federation.flush fed;
          Sim.run sim;
          ignore (Federation.commit fed)
        | _ -> check_shard (Rng.int rng n_shards)
      done;
      for i = 0 to n_shards - 1 do
        check_shard i
      done;
      Federation.shutdown fed;
      true)

(* ---- Corruption -------------------------------------------------------- *)

let test_decode_rejects_garbage () =
  (match Checkpoint.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input must not decode");
  (match Checkpoint.decode "definitely not a checkpoint" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode");
  let valid = Checkpoint.encode [ populated_knowledge 9 ] in
  (match Checkpoint.decode (String.sub valid 0 (String.length valid / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation must not decode");
  let bad_magic = "XX" ^ String.sub valid 2 (String.length valid - 2) in
  match Checkpoint.decode bad_magic with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong magic must not decode"

let test_hive_restore_rejects_corruption_untouched () =
  let sim = Sim.create () in
  let hive = Hive.create ~sim () in
  ignore (Hive.register_program hive Corpus.parser);
  ingest_everywhere hive ~seed:13 ~n:10;
  let before = List.map knowledge_fingerprint (Hive.knowledge_list hive) in
  let ckpt = Hive.checkpoint hive in
  let corrupt = String.sub ckpt 0 (String.length ckpt - 7) in
  (match Hive.restore hive corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated checkpoint must not restore");
  (match Hive.restore hive "SBHVgarbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not restore");
  checkb "failed restores leave the hive untouched" true
    (List.map knowledge_fingerprint (Hive.knowledge_list hive) = before);
  checki "no restore counted" 0 (Hive.stats hive).Hive.restores_completed

let test_tree_read_rejects_node_count_lie () =
  let t = Exec_tree.create () in
  List.iter
    (fun p ->
      let r = run_once Corpus.fig2_write [| p |] in
      ignore (Exec_tree.add_path t r.Interp.full_path r.Interp.outcome))
    [ 5; -1; 200 ];
  let s = tree_bytes t in
  (* Inflate the node count (first varint); the preorder walk then
     cannot account for every node and must reject the payload. *)
  let w = Codec.Writer.create () in
  Codec.Writer.varint w (Exec_tree.n_nodes t + 3);
  let prefix = Codec.Writer.contents w in
  let r0 = Codec.Reader.of_string s in
  ignore (Codec.Reader.varint r0);
  let rest = String.sub s (String.length s - Codec.Reader.remaining r0) (Codec.Reader.remaining r0) in
  match tree_of_bytes (prefix ^ rest) with
  | exception Codec.Malformed _ -> ()
  | exception Codec.Truncated -> ()
  | _ -> Alcotest.fail "inconsistent node count must not decode"

let test_checkpoint_determinism_across_processes () =
  (* Two hives built the same way checkpoint to the same bytes — the
     checkpoint is a pure function of the knowledge state. *)
  let build () =
    let sim = Sim.create () in
    let hive = Hive.create ~sim () in
    ignore (Hive.register_program hive Corpus.parser);
    ingest_everywhere hive ~seed:21 ~n:15;
    Hive.checkpoint hive
  in
  checks "equal states, equal bytes" (build ()) (build ())

(* ---- Crash during retraction ------------------------------------------- *)

module Fixgen = Softborg_hive.Fixgen
module Fix_lifecycle = Softborg_hive.Fix_lifecycle

let test_retraction_survives_crash_restore () =
  let rollout =
    { Fix_lifecycle.default_config with Fix_lifecycle.min_exposed = 2; min_control = 2 }
  in
  let config = { (Hive.default_config Hive.Full) with Hive.rollout = Some rollout } in
  let sim = Sim.create () in
  let hive = Hive.create ~config ~sim () in
  let digest = Ir.digest Corpus.parser in
  let k = Hive.register_program hive Corpus.parser in
  (* A misplaced always-true guard: pure misfire telemetry. *)
  Hive.inject_fix hive ~digest
    (Fixgen.sabotage_kind Fixgen.Misplaced_guard ~program:Corpus.parser);
  let fix_id =
    match Knowledge.canary_ids k with
    | [ id ] -> id
    | _ -> Alcotest.fail "expected one canary"
  in
  let ckpt0 = Hive.checkpoint hive in
  (* Misfire evidence: the canary cohort's guard fires on a workload
     the control cohort shows benign.  Frames are built once and
     replayed verbatim after the crash, as a durable upload log would. *)
  let benign = [| 0; 0; 0 |] in
  let epoch = Knowledge.epoch k in
  let frames =
    List.concat
      (List.init 3 (fun i ->
           let r = run_once ~seed:(40 + i) Corpus.parser benign in
           let upload ~pod ~active ~hook_fires =
             Protocol.encode
               (Protocol.Trace_upload
                  (Wire.encode
                     (Trace.of_result ~program_digest:digest ~pod ~fix_epoch:epoch
                        ~attribution:{ Trace.active_fixes = active; hook_fires }
                        r)))
           in
           [ upload ~pod:1 ~active:[ fix_id ] ~hook_fires:1;
             upload ~pod:2 ~active:[] ~hook_fires:0 ]))
  in
  List.iter (Hive.ingest_payload hive) frames;
  Hive.tick hive;
  checki "retraction decided" 1 (Hive.stats hive).Hive.fix_retractions;
  checki "retract broadcast counted" 1 (Hive.stats hive).Hive.retracts_sent;
  Alcotest.(check (list int)) "retracted ledger" [ fix_id ] (Knowledge.retracted_ids k);
  checki "nothing live" 0 (List.length (Knowledge.live_fixes k));
  let ckpt1 = Hive.checkpoint hive in
  (* Crash A: between the Fix_retract broadcast and the next durable
     checkpoint.  Restored from the pre-retraction snapshot and fed the
     same upload log, the hive re-derives the retraction byte for byte:
     recovery can lag, never diverge. *)
  (match Hive.restore hive ckpt0 with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok _ -> ());
  let k = Option.get (Hive.knowledge hive ~digest) in
  Alcotest.(check (list int)) "rolled back to canary" [ fix_id ] (Knowledge.canary_ids k);
  checki "ledger rolled back" 0 (List.length (Knowledge.retracted_ids k));
  List.iter (Hive.ingest_payload hive) frames;
  Hive.tick hive;
  Alcotest.(check (list int)) "retracted again" [ fix_id ]
    (Knowledge.retracted_ids (Option.get (Hive.knowledge hive ~digest)));
  checks "replayed retraction byte-identical" ckpt1 (Hive.checkpoint hive);
  (* Crash B: after the post-retraction checkpoint.  A twin restored
     from it keeps the fix retracted — no resurrection — and
     re-serializes identically. *)
  let twin = Hive.create ~config ~sim () in
  ignore (Hive.register_program twin Corpus.parser);
  (match Hive.restore twin ckpt1 with
  | Error e -> Alcotest.failf "twin restore failed: %s" e
  | Ok n -> checki "one program restored" 1 n);
  let k' = Option.get (Hive.knowledge twin ~digest) in
  Alcotest.(check (list int)) "twin keeps the retraction" [ fix_id ] (Knowledge.retracted_ids k');
  checki "twin resurrects nothing" 0 (List.length (Knowledge.live_fixes k'));
  checki "twin has no canaries" 0 (List.length (Knowledge.canary_ids k'));
  checks "twin equality" ckpt1 (Hive.checkpoint twin);
  (* Nor can a stale adoption (a reordered pre-retraction Fix_update)
     resurrect it after the restore. *)
  Knowledge.adopt_fixes k' ~fixes:(Knowledge.fixes k')
    ~epoch:(Knowledge.epoch k' - 1)
    ~retracted:[];
  Alcotest.(check (list int)) "stale adoption dropped" [ fix_id ] (Knowledge.retracted_ids k')

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_checkpoint"
    [
      ( "tree",
        [
          q prop_tree_checkpoint_roundtrip;
          Alcotest.test_case "node count lie" `Quick test_tree_read_rejects_node_count_lie;
        ] );
      ( "knowledge",
        [
          Alcotest.test_case "round trip" `Quick test_knowledge_roundtrip;
          q prop_knowledge_roundtrip_random;
        ] );
      ( "hive",
        [
          Alcotest.test_case "frame sorted" `Quick test_frame_sorts_by_digest;
          Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "restore reverts" `Quick test_hive_restore_reverts_knowledge;
          Alcotest.test_case "late programs kept" `Quick test_hive_restore_keeps_late_programs;
          Alcotest.test_case "determinism" `Quick test_checkpoint_determinism_across_processes;
          Alcotest.test_case "retraction survives crash" `Quick
            test_retraction_survives_crash_restore;
        ] );
      ("federation", [ q prop_shard_checkpoint_roundtrip ]);
      ( "corruption",
        [
          Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "hive untouched" `Quick test_hive_restore_rejects_corruption_untouched;
        ] );
    ]
